package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
)

// Binary dataset format:
//
//	magic "GPSD" | version u8
//	name: uvarint len + bytes
//	spaceSize, collectionProbes: uvarint
//	sampleFraction: float64 bits
//	ports: uvarint count + uvarint deltas (sorted)
//	string table: uvarint count + (uvarint len + bytes)*
//	records: uvarint count, then per record:
//	  ip u32 | port u16 | proto u8 | asn uvarint | ttl u8
//	  nfeats u8 + (key u8, string-table index uvarint)*
//
// Feature values are interned through the string table, which is what
// makes the format compact: fleet-scoped banner values appear once no
// matter how many thousands of hosts share them.

const (
	binaryMagic   = "GPSD"
	binaryVersion = 1
)

// WriteDatasetBinary writes the dataset in the compact binary format and
// returns the number of bytes written.
func WriteDatasetBinary(w io.Writer, d *dataset.Dataset) (uint64, error) {
	cw := &CountingWriter{W: w}
	bw := bufio.NewWriter(cw)

	bw.WriteString(binaryMagic)
	bw.WriteByte(binaryVersion)
	writeUvarint(bw, uint64(len(d.Name)))
	bw.WriteString(d.Name)
	writeUvarint(bw, d.SpaceSize)
	writeUvarint(bw, d.CollectionProbes)
	var f8 [8]byte
	binary.BigEndian.PutUint64(f8[:], math.Float64bits(d.SampleFraction))
	bw.Write(f8[:])

	writeUvarint(bw, uint64(len(d.Ports)))
	prev := uint64(0)
	for _, p := range d.Ports {
		writeUvarint(bw, uint64(p)-prev)
		prev = uint64(p)
	}

	// Build the string table.
	index := make(map[string]uint64)
	var table []string
	intern := func(s string) uint64 {
		if id, ok := index[s]; ok {
			return id
		}
		id := uint64(len(table))
		index[s] = id
		table = append(table, s)
		return id
	}
	type featRef struct {
		key features.Key
		id  uint64
	}
	featRefs := make([][]featRef, len(d.Records))
	for i, r := range d.Records {
		for _, v := range r.Feats.Values() {
			featRefs[i] = append(featRefs[i], featRef{key: v.Key, id: intern(v.Val)})
		}
	}
	writeUvarint(bw, uint64(len(table)))
	for _, s := range table {
		writeUvarint(bw, uint64(len(s)))
		bw.WriteString(s)
	}

	writeUvarint(bw, uint64(len(d.Records)))
	var u4 [4]byte
	var u2 [2]byte
	for i, r := range d.Records {
		binary.BigEndian.PutUint32(u4[:], uint32(r.IP))
		bw.Write(u4[:])
		binary.BigEndian.PutUint16(u2[:], r.Port)
		bw.Write(u2[:])
		bw.WriteByte(byte(r.Proto))
		writeUvarint(bw, uint64(r.ASN))
		bw.WriteByte(r.TTL)
		bw.WriteByte(byte(len(featRefs[i])))
		for _, fr := range featRefs[i] {
			bw.WriteByte(byte(fr.key))
			writeUvarint(bw, fr.id)
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, nil
}

// ReadDatasetBinary parses WriteDatasetBinary output.
func ReadDatasetBinary(r io.Reader) (*dataset.Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("store: unsupported version %d", ver)
	}

	d := &dataset.Dataset{}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	d.Name = string(name)
	if d.SpaceSize, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if d.CollectionProbes, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	var f8 [8]byte
	if _, err := io.ReadFull(br, f8[:]); err != nil {
		return nil, err
	}
	d.SampleFraction = math.Float64frombits(binary.BigEndian.Uint64(f8[:]))

	nPorts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nPorts > 65536 {
		return nil, fmt.Errorf("store: implausible port count %d", nPorts)
	}
	prev := uint64(0)
	for i := uint64(0); i < nPorts; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prev += delta
		if prev > 65535 {
			return nil, fmt.Errorf("store: port overflow")
		}
		d.Ports = append(d.Ports, uint16(prev))
	}

	nStrings, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	table := make([]string, nStrings)
	for i := range table {
		slen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if slen > 1<<20 {
			return nil, fmt.Errorf("store: implausible string length %d", slen)
		}
		buf := make([]byte, slen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		table[i] = string(buf)
	}

	nRecords, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	d.Records = make([]dataset.Record, 0, nRecords)
	var u4 [4]byte
	var u2 [2]byte
	for i := uint64(0); i < nRecords; i++ {
		var rec dataset.Record
		if _, err := io.ReadFull(br, u4[:]); err != nil {
			return nil, err
		}
		rec.IP = asndb.IP(binary.BigEndian.Uint32(u4[:]))
		if _, err := io.ReadFull(br, u2[:]); err != nil {
			return nil, err
		}
		rec.Port = binary.BigEndian.Uint16(u2[:])
		proto, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.Proto = features.Protocol(proto)
		asn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		rec.ASN = asndb.ASN(asn)
		ttl, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rec.TTL = ttl
		nf, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if nf > 0 {
			rec.Feats = make(features.Set, nf)
			for j := 0; j < int(nf); j++ {
				key, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				id, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				if id >= uint64(len(table)) {
					return nil, fmt.Errorf("store: string index %d out of range", id)
				}
				rec.Feats[features.Key(key)] = table[id]
			}
		}
		d.Records = append(d.Records, rec)
	}
	return d, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
