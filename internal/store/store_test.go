package store

import (
	"bytes"
	"strings"
	"testing"

	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/predict"
)

func sampleDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	u := netmodel.Generate(netmodel.TestParams(55))
	d := dataset.SnapshotCensys(u, 40)
	sortRecords(d.Records)
	return d
}

func recordsEqual(t *testing.T, a, b []dataset.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.IP != rb.IP || ra.Port != rb.Port || ra.Proto != rb.Proto ||
			ra.ASN != rb.ASN || ra.TTL != rb.TTL {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
		if len(ra.Feats) != len(rb.Feats) {
			t.Fatalf("record %d feature counts differ", i)
		}
		for k, v := range ra.Feats {
			if rb.Feats[k] != v {
				t.Fatalf("record %d feature %v differs: %q vs %q", i, k, v, rb.Feats[k])
			}
		}
	}
}

func TestDatasetCSVRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, d.Records, back.Records)
}

func TestFeatureEscaping(t *testing.T) {
	d := &dataset.Dataset{Records: []dataset.Record{{
		IP: 1, Port: 80, Proto: features.ProtocolHTTP,
		Feats: features.Set{
			features.KeyHTTPTitle:  "a|b=c%d",
			features.KeyHTTPServer: "plain",
		},
	}}}
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, d.Records, back.Records)
}

func TestDatasetBinaryRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	n, err := WriteDatasetBinary(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(buf.Len()) {
		t.Errorf("byte count %d != buffer %d", n, buf.Len())
	}
	back, err := ReadDatasetBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, d.Records, back.Records)
	if back.Name != d.Name || back.SpaceSize != d.SpaceSize ||
		back.SampleFraction != d.SampleFraction ||
		back.CollectionProbes != d.CollectionProbes {
		t.Error("metadata lost in binary round trip")
	}
	if len(back.Ports) != len(d.Ports) {
		t.Fatalf("port list lost: %d vs %d", len(back.Ports), len(d.Ports))
	}
	for i := range d.Ports {
		if back.Ports[i] != d.Ports[i] {
			t.Fatal("port list corrupted")
		}
	}
}

func TestBinarySmallerThanCSV(t *testing.T) {
	d := sampleDataset(t)
	var csvBuf, binBuf bytes.Buffer
	if err := WriteDatasetCSV(&csvBuf, d); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteDatasetBinary(&binBuf, d); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= csvBuf.Len() {
		t.Errorf("binary (%d B) not smaller than CSV (%d B); string interning broken?",
			binBuf.Len(), csvBuf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GPS"),
		[]byte("NOPE....."),
		append([]byte("GPSD"), 99), // bad version
	}
	for _, c := range cases {
		if _, err := ReadDatasetBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Truncation mid-stream must error, not panic.
	d := sampleDataset(t)
	var buf bytes.Buffer
	WriteDatasetBinary(&buf, d)
	for _, cut := range []int{5, 20, buf.Len() / 2} {
		if _, err := ReadDatasetBinary(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestPredictionsCSVRoundTrip(t *testing.T) {
	preds := []predict.Prediction{
		{IP: 0x01020304, Port: 80, P: 0.75},
		{IP: 0x05060708, Port: 8443, P: 1e-5},
	}
	var buf bytes.Buffer
	if err := WritePredictionsCSV(&buf, preds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPredictionsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(preds) {
		t.Fatalf("count %d", len(back))
	}
	for i := range preds {
		if back[i] != preds[i] {
			t.Errorf("prediction %d: %+v vs %+v", i, back[i], preds[i])
		}
	}
}

func TestWriteCurveCSV(t *testing.T) {
	c := metrics.Curve{
		{Probes: 100, Found: 5, FracAll: 0.5, FracNorm: 0.25, Precision: 0.05, ScansUnits: 0.1},
	}
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, "gps", c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "series,probes") || !strings.Contains(out, "gps,100") {
		t.Errorf("unexpected CSV:\n%s", out)
	}
}

func TestCountingWriter(t *testing.T) {
	var sink bytes.Buffer
	cw := &CountingWriter{W: &sink}
	cw.Write([]byte("hello"))
	cw.Write([]byte(" world"))
	if cw.N != 11 {
		t.Errorf("counted %d bytes; want 11", cw.N)
	}
}
