// Package store persists GPS artifacts: datasets (scan results), the
// predictions list, and coverage curves. The real GPS pipeline moves these
// as files between the scanning host and BigQuery (Figure 1); the byte
// counts this package reports feed Table 2's upload/download accounting.
//
// Two formats are provided: CSV for interoperability (what the real
// pipeline uploads to BigQuery) and a compact length-prefixed binary
// format with a string table for local storage.
package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/features"
	"gps/internal/metrics"
	"gps/internal/predict"
)

// csvHeader is the dataset CSV column set.
var csvHeader = []string{"ip", "port", "protocol", "asn", "ttl", "features"}

// WriteDatasetCSV writes records as CSV. Feature sets are encoded as
// "key=value" pairs joined with "|", with keys in Table-1 order so output
// is deterministic.
func WriteDatasetCSV(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, r := range d.Records {
		row[0] = r.IP.String()
		row[1] = strconv.Itoa(int(r.Port))
		row[2] = r.Proto.String()
		row[3] = strconv.FormatUint(uint64(r.ASN), 10)
		row[4] = strconv.Itoa(int(r.TTL))
		row[5] = encodeFeats(r.Feats)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func encodeFeats(s features.Set) string {
	if len(s) == 0 {
		return ""
	}
	vals := s.Values()
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d=%s", uint8(v.Key), escapeFeat(v.Val))
	}
	return strings.Join(parts, "|")
}

func escapeFeat(v string) string {
	v = strings.ReplaceAll(v, "%", "%25")
	v = strings.ReplaceAll(v, "|", "%7C")
	return strings.ReplaceAll(v, "=", "%3D")
}

func unescapeFeat(v string) string {
	v = strings.ReplaceAll(v, "%3D", "=")
	v = strings.ReplaceAll(v, "%7C", "|")
	return strings.ReplaceAll(v, "%25", "%")
}

func decodeFeats(s string) (features.Set, error) {
	if s == "" {
		return nil, nil
	}
	out := make(features.Set)
	for _, part := range strings.Split(s, "|") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("store: bad feature %q", part)
		}
		key, err := strconv.ParseUint(part[:eq], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("store: bad feature key %q: %v", part[:eq], err)
		}
		out[features.Key(key)] = unescapeFeat(part[eq+1:])
	}
	return out, nil
}

// ReadDatasetCSV parses a dataset written by WriteDatasetCSV. Metadata
// fields (SpaceSize and so on) are not carried by CSV; callers needing
// them should use the binary format.
func ReadDatasetCSV(r io.Reader) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if len(head) != len(csvHeader) || head[0] != "ip" {
		return nil, fmt.Errorf("store: unexpected CSV header %v", head)
	}
	d := &dataset.Dataset{Name: "csv"}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ip, err := asndb.ParseIP(row[0])
		if err != nil {
			return nil, err
		}
		port, err := strconv.ParseUint(row[1], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("store: bad port %q: %v", row[1], err)
		}
		asn, err := strconv.ParseUint(row[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("store: bad ASN %q: %v", row[3], err)
		}
		ttl, err := strconv.ParseUint(row[4], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("store: bad TTL %q: %v", row[4], err)
		}
		feats, err := decodeFeats(row[5])
		if err != nil {
			return nil, err
		}
		d.Records = append(d.Records, dataset.Record{
			IP:    ip,
			Port:  uint16(port),
			Proto: features.ParseProtocol(row[2]),
			ASN:   asndb.ASN(asn),
			TTL:   uint8(ttl),
			Feats: feats,
		})
	}
	return d, nil
}

// WritePredictionsCSV writes the ordered predictions list: the artifact
// GPS downloads from BigQuery to the scanning host (Table 2's "PRS
// Download", 547 GB in the paper).
func WritePredictionsCSV(w io.Writer, preds []predict.Prediction) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ip", "port", "probability"}); err != nil {
		return err
	}
	for _, p := range preds {
		err := cw.Write([]string{
			p.IP.String(),
			strconv.Itoa(int(p.Port)),
			strconv.FormatFloat(p.P, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPredictionsCSV parses WritePredictionsCSV output.
func ReadPredictionsCSV(r io.Reader) ([]predict.Prediction, error) {
	cr := csv.NewReader(r)
	if _, err := cr.Read(); err != nil {
		return nil, err
	}
	var out []predict.Prediction
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		ip, err := asndb.ParseIP(row[0])
		if err != nil {
			return nil, err
		}
		port, err := strconv.ParseUint(row[1], 10, 16)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, err
		}
		out = append(out, predict.Prediction{IP: ip, Port: uint16(port), P: p})
	}
}

// WriteCurveCSV writes a coverage curve as CSV series data: the raw
// material of every figure in the evaluation.
func WriteCurveCSV(w io.Writer, name string, c metrics.Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "probes", "scans", "found", "frac_all", "frac_norm", "precision"}); err != nil {
		return err
	}
	for _, p := range c {
		err := cw.Write([]string{
			name,
			strconv.FormatUint(p.Probes, 10),
			strconv.FormatFloat(p.ScansUnits, 'g', 8, 64),
			strconv.Itoa(p.Found),
			strconv.FormatFloat(p.FracAll, 'g', 8, 64),
			strconv.FormatFloat(p.FracNorm, 'g', 8, 64),
			strconv.FormatFloat(p.Precision, 'g', 8, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CountingWriter wraps a writer and counts bytes, for transfer accounting.
type CountingWriter struct {
	W io.Writer
	N uint64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += uint64(n)
	return n, err
}

// sortRecords orders records by (IP, port) for deterministic output.
func sortRecords(recs []dataset.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].IP != recs[j].IP {
			return recs[i].IP < recs[j].IP
		}
		return recs[i].Port < recs[j].Port
	})
}
