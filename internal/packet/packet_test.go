package packet

import (
	"testing"
	"testing/quick"

	"gps/internal/asndb"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x10, TotalLen: 40, ID: GPSProbeIPID, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: ProtoTCP,
		Src: asndb.MustParseIP("192.0.2.1"), Dst: asndb.MustParseIP("198.51.100.2"),
	}
	var buf [64]byte
	n, err := h.Marshal(buf[:])
	if err != nil || n != IPv4HeaderLen {
		t.Fatalf("Marshal: %d, %v", n, err)
	}
	// Self-verifying checksum.
	if Checksum(buf[:IPv4HeaderLen]) != 0 {
		t.Error("serialized header fails its own checksum")
	}
	got, _, err := ParseIPv4(buf[:40])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: %+v != %+v", got, h)
	}
}

// TestIPv4RoundTripQuick property: any header round-trips bit-exactly.
func TestIPv4RoundTripQuick(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, src, dst uint32, payLen uint8) bool {
		h := IPv4{
			TOS: tos, TotalLen: uint16(IPv4HeaderLen) + uint16(payLen), ID: id,
			TTL: ttl, Protocol: ProtoTCP,
			Src: asndb.IP(src), Dst: asndb.IP(dst),
		}
		buf := make([]byte, IPv4HeaderLen+int(payLen))
		if _, err := h.Marshal(buf); err != nil {
			return false
		}
		got, payload, err := ParseIPv4(buf)
		return err == nil && got == h && len(payload) == int(payLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	if _, _, err := ParseIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short buffer: %v", err)
	}
	var buf [40]byte
	h := IPv4{TotalLen: 40, TTL: 1, Protocol: ProtoTCP}
	h.Marshal(buf[:])
	buf[0] = 0x65 // version 6
	if _, _, err := ParseIPv4(buf[:]); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	h.Marshal(buf[:])
	buf[8] ^= 0xff // corrupt TTL; checksum now wrong
	if _, _, err := ParseIPv4(buf[:]); err != ErrBadChecksum {
		t.Errorf("corruption: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := asndb.MustParseIP("192.0.2.1"), asndb.MustParseIP("198.51.100.2")
	tc := TCP{SrcPort: 43210, DstPort: 80, Seq: 0xdeadbeef, Ack: 0xfeedface,
		Flags: FlagSYN | FlagACK, Window: 1024, Urgent: 7}
	payload := []byte("GET / HTTP/1.0\r\n")
	buf := make([]byte, TCPHeaderLen+len(payload))
	if _, err := tc.Marshal(buf, src, dst, payload); err != nil {
		t.Fatal(err)
	}
	got, pay, err := ParseTCP(buf, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Errorf("round trip: %+v != %+v", got, tc)
	}
	if string(pay) != string(payload) {
		t.Errorf("payload corrupted: %q", pay)
	}
	// Checksum binds to the pseudo header: parsing with wrong endpoints
	// must fail.
	if _, _, err := ParseTCP(buf, src, dst+1); err != ErrBadChecksum {
		t.Errorf("wrong endpoints accepted: %v", err)
	}
}

// TestTCPRoundTripQuick property: headers round-trip for arbitrary fields.
func TestTCPRoundTripQuick(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, src, dst uint32) bool {
		tc := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		var buf [TCPHeaderLen]byte
		if _, err := tc.Marshal(buf[:], asndb.IP(src), asndb.IP(dst), nil); err != nil {
			return false
		}
		got, _, err := ParseTCP(buf[:], asndb.IP(src), asndb.IP(dst))
		return err == nil && got == tc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x; want 0x220d", got)
	}
	// Odd-length data must not panic and must self-verify once embedded.
	if Checksum([]byte{0xff}) == 0 {
		t.Error("odd-length checksum degenerate")
	}
}

func TestValidatorTokens(t *testing.T) {
	v := NewValidator(0x1234)
	dst := asndb.MustParseIP("203.0.113.9")
	tok := v.Token(dst, 443)
	if !v.ValidAck(dst, 443, tok+1) {
		t.Error("valid ack rejected")
	}
	if v.ValidAck(dst, 443, tok) || v.ValidAck(dst, 443, tok+2) {
		t.Error("off-by-one ack accepted")
	}
	if v.ValidAck(dst, 444, tok+1) {
		t.Error("wrong port accepted")
	}
	// Different secrets yield different tokens (scan isolation).
	if NewValidator(0x9999).Token(dst, 443) == tok {
		t.Error("secrets do not separate token spaces")
	}
}

func TestSYNProbeEndToEnd(t *testing.T) {
	v := NewValidator(42)
	scanSrc := asndb.MustParseIP("192.0.2.1")
	target := asndb.MustParseIP("203.0.113.9")

	var probe [64]byte
	n, err := BuildSYN(probe[:], v, scanSrc, target, 54000, 80)
	if err != nil {
		t.Fatal(err)
	}
	// The probe carries the GPS fingerprint.
	ip, tcpPayload, err := ParseIPv4(probe[:n])
	if err != nil {
		t.Fatal(err)
	}
	if ip.ID != GPSProbeIPID {
		t.Errorf("probe IP-ID = %d; want %d (the blockable fingerprint)", ip.ID, GPSProbeIPID)
	}
	syn, _, err := ParseTCP(tcpPayload, ip.Src, ip.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if !syn.SYN() {
		t.Error("probe is not a pure SYN")
	}

	// The service answers; the response validates.
	var resp [64]byte
	rn, err := BuildSYNACK(resp[:], target, scanSrc, 80, 54000, syn.Seq, 55)
	if err != nil {
		t.Fatal(err)
	}
	_, rtcp, ok, err := ParseResponse(resp[:rn], v)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !rtcp.SYNACK() {
		t.Error("legitimate SYN-ACK failed validation")
	}

	// A spoofed response with the wrong ack fails validation.
	var spoof [64]byte
	sn, _ := BuildSYNACK(spoof[:], target, scanSrc, 80, 54000, syn.Seq+99, 55)
	if _, _, ok, _ := ParseResponse(spoof[:sn], v); ok {
		t.Error("spoofed SYN-ACK validated")
	}

	// A closed port's RST parses but does not validate as a service.
	var rst [64]byte
	kn, _ := BuildRST(rst[:], target, scanSrc, 80, 54000, syn.Seq, 55)
	_, ktcp, ok, err := ParseResponse(rst[:kn], v)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("RST validated as a service")
	}
	if !ktcp.RST() {
		t.Error("RST flag lost")
	}
}
