// Package packet implements the wire format of GPS's probe traffic: IPv4
// and TCP header serialization and parsing, Internet checksums, and
// ZMap-style stateless probe validation. ZMap (§5.5) sends SYN probes with
// no per-target state; it recognizes legitimate responses by encoding a
// validation token into fields the peer must echo (the TCP sequence
// number, acked back as ack-1) and stamps every probe with the fixed IP-ID
// 54321 so network operators can filter GPS traffic with one rule.
//
// The simulator normally short-circuits the wire, but the scanner's "wire
// mode" and the tests exercise this codec end to end, byte for byte.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gps/internal/asndb"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// Errors returned by the parsers.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadIHL      = errors.New("packet: bad header length")
)

// IPv4 is a parsed or to-be-serialized IPv4 header (no options).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst asndb.IP
}

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// Marshal serializes the header into buf, which must hold at least
// IPv4HeaderLen bytes, and returns the number of bytes written. The
// checksum is computed over the serialized header.
func (h *IPv4) Marshal(buf []byte) (int, error) {
	if len(buf) < IPv4HeaderLen {
		return 0, ErrTruncated
	}
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], h.TotalLen)
	binary.BigEndian.PutUint16(buf[4:], h.ID)
	binary.BigEndian.PutUint16(buf[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	buf[10], buf[11] = 0, 0 // checksum zeroed for computation
	binary.BigEndian.PutUint32(buf[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(buf[16:], uint32(h.Dst))
	sum := Checksum(buf[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(buf[10:], sum)
	return IPv4HeaderLen, nil
}

// ParseIPv4 parses and validates an IPv4 header, returning the header and
// the payload slice.
func ParseIPv4(buf []byte) (IPv4, []byte, error) {
	if len(buf) < IPv4HeaderLen {
		return IPv4{}, nil, ErrTruncated
	}
	if buf[0]>>4 != 4 {
		return IPv4{}, nil, ErrBadVersion
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || ihl > len(buf) {
		return IPv4{}, nil, ErrBadIHL
	}
	if Checksum(buf[:ihl]) != 0 {
		return IPv4{}, nil, ErrBadChecksum
	}
	h := IPv4{
		TOS:      buf[1],
		TotalLen: binary.BigEndian.Uint16(buf[2:]),
		ID:       binary.BigEndian.Uint16(buf[4:]),
		Flags:    buf[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(buf[6:]) & 0x1fff,
		TTL:      buf[8],
		Protocol: buf[9],
		Src:      asndb.IP(binary.BigEndian.Uint32(buf[12:])),
		Dst:      asndb.IP(binary.BigEndian.Uint32(buf[16:])),
	}
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(buf) {
		return IPv4{}, nil, ErrTruncated
	}
	return h, buf[ihl:h.TotalLen], nil
}

// Checksum computes the Internet checksum (RFC 1071) over data. Verifying
// a buffer that embeds its own checksum yields 0.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP pseudo-header partial sum used in the
// TCP checksum.
func pseudoHeaderSum(src, dst asndb.IP, tcpLen int) uint32 {
	var sum uint32
	sum += uint32(src) >> 16
	sum += uint32(src) & 0xffff
	sum += uint32(dst) >> 16
	sum += uint32(dst) & 0xffff
	sum += ProtoTCP
	sum += uint32(tcpLen)
	return sum
}

// String renders a short human-readable form.
func (h *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s -> %s id=%d ttl=%d proto=%d len=%d",
		h.Src, h.Dst, h.ID, h.TTL, h.Protocol, h.TotalLen)
}
