package packet

import (
	"encoding/binary"
	"hash/fnv"

	"gps/internal/asndb"
)

// GPSProbeIPID is the IP identification GPS stamps on every probe; it
// mirrors scanner.ProbeIPID but lives here so the codec has no dependency
// on the scanner.
const GPSProbeIPID = 54321

// ProbeTTL is the initial TTL on outgoing probes.
const ProbeTTL = 64

// Validator derives and checks ZMap-style stateless validation tokens.
// ZMap keeps no per-target state: the probe's TCP sequence number is an
// HMAC-like digest of (secret, dst IP, dst port), and a legitimate SYN-ACK
// must acknowledge exactly that value plus one. Spoofed or stray responses
// fail the check.
type Validator struct {
	secret uint64
}

// NewValidator creates a validator with a scan-specific secret.
func NewValidator(secret uint64) *Validator { return &Validator{secret: secret} }

// Token derives the validation sequence number for a target.
func (v *Validator) Token(dst asndb.IP, port uint16) uint32 {
	h := fnv.New64a()
	var buf [14]byte
	binary.BigEndian.PutUint64(buf[0:], v.secret)
	binary.BigEndian.PutUint32(buf[8:], uint32(dst))
	binary.BigEndian.PutUint16(buf[12:], port)
	h.Write(buf[:])
	return uint32(h.Sum64())
}

// ValidAck reports whether an acknowledged sequence number proves the peer
// saw our probe to (src of the response, source port of the response).
func (v *Validator) ValidAck(peer asndb.IP, peerPort uint16, ack uint32) bool {
	return ack == v.Token(peer, peerPort)+1
}

// BuildSYN serializes a complete GPS SYN probe (IPv4 + TCP) into buf and
// returns the bytes written. The probe carries the GPS IP-ID fingerprint
// and the validation token as its sequence number.
func BuildSYN(buf []byte, v *Validator, src, dst asndb.IP, srcPort, dstPort uint16) (int, error) {
	if len(buf) < IPv4HeaderLen+TCPHeaderLen {
		return 0, ErrTruncated
	}
	tcp := TCP{
		SrcPort: srcPort,
		DstPort: dstPort,
		Seq:     v.Token(dst, dstPort),
		Flags:   FlagSYN,
		Window:  65535,
	}
	tcpLen, err := tcp.Marshal(buf[IPv4HeaderLen:], src, dst, nil)
	if err != nil {
		return 0, err
	}
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + tcpLen),
		ID:       GPSProbeIPID,
		TTL:      ProbeTTL,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	if _, err := ip.Marshal(buf); err != nil {
		return 0, err
	}
	return IPv4HeaderLen + tcpLen, nil
}

// BuildSYNACK serializes the response a live service would send to a SYN
// probe: it echoes probe.Seq+1 as the acknowledgment.
func BuildSYNACK(buf []byte, src, dst asndb.IP, srcPort, dstPort uint16, probeSeq uint32, ttl uint8) (int, error) {
	if len(buf) < IPv4HeaderLen+TCPHeaderLen {
		return 0, ErrTruncated
	}
	tcp := TCP{
		SrcPort: srcPort,
		DstPort: dstPort,
		Seq:     probeSeq ^ 0x5a5a5a5a, // arbitrary server ISN
		Ack:     probeSeq + 1,
		Flags:   FlagSYN | FlagACK,
		Window:  65535,
	}
	tcpLen, err := tcp.Marshal(buf[IPv4HeaderLen:], src, dst, nil)
	if err != nil {
		return 0, err
	}
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + tcpLen),
		ID:       0x1234,
		TTL:      ttl,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	if _, err := ip.Marshal(buf); err != nil {
		return 0, err
	}
	return IPv4HeaderLen + tcpLen, nil
}

// BuildRST serializes the reset a closed port would send.
func BuildRST(buf []byte, src, dst asndb.IP, srcPort, dstPort uint16, probeSeq uint32, ttl uint8) (int, error) {
	if len(buf) < IPv4HeaderLen+TCPHeaderLen {
		return 0, ErrTruncated
	}
	tcp := TCP{
		SrcPort: srcPort,
		DstPort: dstPort,
		Ack:     probeSeq + 1,
		Flags:   FlagRST | FlagACK,
	}
	tcpLen, err := tcp.Marshal(buf[IPv4HeaderLen:], src, dst, nil)
	if err != nil {
		return 0, err
	}
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + tcpLen),
		ID:       0x1234,
		TTL:      ttl,
		Protocol: ProtoTCP,
		Src:      src,
		Dst:      dst,
	}
	if _, err := ip.Marshal(buf); err != nil {
		return 0, err
	}
	return IPv4HeaderLen + tcpLen, nil
}

// ParseResponse parses a full IPv4+TCP response and classifies it against
// the validator. It returns the parsed headers and whether the response is
// a validated SYN-ACK from a probe this validator issued.
func ParseResponse(buf []byte, v *Validator) (IPv4, TCP, bool, error) {
	ip, payload, err := ParseIPv4(buf)
	if err != nil {
		return IPv4{}, TCP{}, false, err
	}
	if ip.Protocol != ProtoTCP {
		return ip, TCP{}, false, nil
	}
	tcp, _, err := ParseTCP(payload, ip.Src, ip.Dst)
	if err != nil {
		return ip, TCP{}, false, err
	}
	ok := tcp.SYNACK() && v.ValidAck(ip.Src, tcp.SrcPort, tcp.Ack)
	return ip, tcp, ok, nil
}
