package packet

import (
	"encoding/binary"
	"fmt"

	"gps/internal/asndb"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// TCP is a parsed or to-be-serialized TCP header (no options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Urgent           uint16
}

// Marshal serializes the header plus payload into buf and returns the
// bytes written. The checksum covers the pseudo-header, header, and
// payload, so the IP endpoints are required.
func (t *TCP) Marshal(buf []byte, src, dst asndb.IP, payload []byte) (int, error) {
	need := TCPHeaderLen + len(payload)
	if len(buf) < need {
		return 0, ErrTruncated
	}
	binary.BigEndian.PutUint16(buf[0:], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:], t.Seq)
	binary.BigEndian.PutUint32(buf[8:], t.Ack)
	buf[12] = 5 << 4 // data offset: 5 words
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:], t.Window)
	buf[16], buf[17] = 0, 0 // checksum
	binary.BigEndian.PutUint16(buf[18:], t.Urgent)
	copy(buf[TCPHeaderLen:], payload)
	sum := tcpChecksum(buf[:need], src, dst)
	binary.BigEndian.PutUint16(buf[16:], sum)
	return need, nil
}

// ParseTCP parses and validates a TCP segment (header + payload) given the
// IP endpoints for checksum verification.
func ParseTCP(buf []byte, src, dst asndb.IP) (TCP, []byte, error) {
	if len(buf) < TCPHeaderLen {
		return TCP{}, nil, ErrTruncated
	}
	off := int(buf[12]>>4) * 4
	if off < TCPHeaderLen || off > len(buf) {
		return TCP{}, nil, ErrBadIHL
	}
	if tcpChecksum(buf, src, dst) != 0 {
		return TCP{}, nil, ErrBadChecksum
	}
	t := TCP{
		SrcPort: binary.BigEndian.Uint16(buf[0:]),
		DstPort: binary.BigEndian.Uint16(buf[2:]),
		Seq:     binary.BigEndian.Uint32(buf[4:]),
		Ack:     binary.BigEndian.Uint32(buf[8:]),
		Flags:   buf[13],
		Window:  binary.BigEndian.Uint16(buf[14:]),
		Urgent:  binary.BigEndian.Uint16(buf[18:]),
	}
	return t, buf[off:], nil
}

// tcpChecksum computes the TCP checksum including the pseudo-header.
func tcpChecksum(segment []byte, src, dst asndb.IP) uint16 {
	sum := pseudoHeaderSum(src, dst, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i:]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// SYN reports whether the segment is a pure SYN.
func (t *TCP) SYN() bool { return t.Flags&FlagSYN != 0 && t.Flags&FlagACK == 0 }

// SYNACK reports whether the segment is a SYN-ACK.
func (t *TCP) SYNACK() bool { return t.Flags&FlagSYN != 0 && t.Flags&FlagACK != 0 }

// RST reports whether the segment resets the connection.
func (t *TCP) RST() bool { return t.Flags&FlagRST != 0 }

// String renders a short human-readable form.
func (t *TCP) String() string {
	return fmt.Sprintf("TCP %d -> %d seq=%d ack=%d flags=%#x", t.SrcPort, t.DstPort, t.Seq, t.Ack, t.Flags)
}
