// Package ipv6 implements the paper's IPv6 extension (§7): GPS cannot
// bootstrap itself on IPv6 — the 2^128 space rules out the random seed
// scan and the subnet-exhaustive priors scan — but *given* known IPv6
// addresses that respond on at least one port (a hitlist), GPS's
// prediction phase applies unchanged: the known service's application
// features index the most-predictive-feature-values list and the predicted
// ports are probed directly on the known addresses.
//
// The package provides a 128-bit address type, a synthetic dual-stack
// universe (v6 mirrors of v4 fleet hosts), and the hitlist predictor.
package ipv6

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 128-bit IPv6 address.
type Addr struct {
	Hi, Lo uint64
}

// ParseAddr parses the full or ::-compressed textual form (no embedded
// IPv4 dotted quads).
func ParseAddr(s string) (Addr, error) {
	var groups [8]uint16
	di := strings.Index(s, "::")
	fill := func(parts []string, dst []uint16) error {
		for i, p := range parts {
			if p == "" {
				return fmt.Errorf("ipv6: empty group in %q", s)
			}
			v, err := strconv.ParseUint(p, 16, 16)
			if err != nil {
				return fmt.Errorf("ipv6: bad group %q in %q", p, s)
			}
			dst[i] = uint16(v)
		}
		return nil
	}
	if di >= 0 {
		leftS, rightS := s[:di], s[di+2:]
		var left, right []string
		if leftS != "" {
			left = strings.Split(leftS, ":")
		}
		if rightS != "" {
			right = strings.Split(rightS, ":")
		}
		if len(left)+len(right) > 7 {
			return Addr{}, fmt.Errorf("ipv6: too many groups in %q", s)
		}
		if err := fill(left, groups[:len(left)]); err != nil {
			return Addr{}, err
		}
		if err := fill(right, groups[8-len(right):]); err != nil {
			return Addr{}, err
		}
	} else {
		parts := strings.Split(s, ":")
		if len(parts) != 8 {
			return Addr{}, fmt.Errorf("ipv6: want 8 groups in %q", s)
		}
		if err := fill(parts, groups[:]); err != nil {
			return Addr{}, err
		}
	}
	var b [16]byte
	for i, g := range groups {
		binary.BigEndian.PutUint16(b[2*i:], g)
	}
	return Addr{
		Hi: binary.BigEndian.Uint64(b[:8]),
		Lo: binary.BigEndian.Uint64(b[8:]),
	}, nil
}

// MustParseAddr is ParseAddr that panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the RFC 5952 canonical form: lowercase hex, longest run
// of two or more zero groups compressed to "::".
func (a Addr) String() string {
	var groups [8]uint16
	for i := 0; i < 4; i++ {
		groups[i] = uint16(a.Hi >> (48 - 16*i))
		groups[4+i] = uint16(a.Lo >> (48 - 16*i))
	}
	// Find the longest zero run of length >= 2.
	bestStart, bestLen := -1, 1
	run, runStart := 0, 0
	for i := 0; i <= 8; i++ {
		if i < 8 && groups[i] == 0 {
			if run == 0 {
				runStart = i
			}
			run++
			continue
		}
		if run > bestLen {
			bestStart, bestLen = runStart, run
		}
		run = 0
	}
	var b strings.Builder
	for i := 0; i < 8; {
		if i == bestStart {
			b.WriteString("::")
			i += bestLen
			continue
		}
		if i > 0 && !strings.HasSuffix(b.String(), "::") {
			b.WriteByte(':')
		}
		b.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
		i++
	}
	if b.Len() == 0 {
		return "::"
	}
	return b.String()
}

// Prefix is an IPv6 CIDR block.
type Prefix struct {
	Addr Addr
	Bits uint8 // 0..128
}

// Mask returns the network mask as an Addr.
func Mask(bits uint8) Addr {
	if bits == 0 {
		return Addr{}
	}
	if bits <= 64 {
		return Addr{Hi: ^uint64(0) << (64 - bits)}
	}
	return Addr{Hi: ^uint64(0), Lo: ^uint64(0) << (128 - bits)}
}

// SubnetOf masks an address to a prefix of the given length.
func SubnetOf(a Addr, bits uint8) Prefix {
	m := Mask(bits)
	return Prefix{Addr: Addr{Hi: a.Hi & m.Hi, Lo: a.Lo & m.Lo}, Bits: bits}
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	m := Mask(p.Bits)
	return a.Hi&m.Hi == p.Addr.Hi && a.Lo&m.Lo == p.Addr.Lo
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }
