package ipv6

import (
	"sort"

	"gps/internal/features"
	"gps/internal/predict"
	"gps/internal/probmodel"
)

// Prediction is a predicted (address, port) pair.
type Prediction struct {
	Addr Addr
	Port uint16
	P    float64
}

// condsForGrab builds the condition tuples a known v6 service contributes.
// Network-layer features are dropped: the model was trained on IPv4
// subnets and ASNs whose values do not transfer across address families,
// so only the transport and application families (Expressions 4 and 5)
// apply. This is exactly the degradation the paper anticipates for the
// IPv6 mode.
func condsForGrab(port uint16, feats features.Set, fams probmodel.FamilySet) []probmodel.Cond {
	out := []probmodel.Cond{}
	if fams.Has(probmodel.FamilyT) {
		out = append(out, probmodel.Cond{Port: port})
	}
	if fams.Has(probmodel.FamilyTA) {
		for _, v := range feats.Values() {
			out = append(out, probmodel.Cond{Port: port, AppKey: v.Key, AppVal: v.Val})
		}
	}
	return out
}

// Predictor maps known IPv6 services through a v4-trained model and MPF
// list.
type Predictor struct {
	model *probmodel.Model
	mpf   *predict.MPF
}

// NewPredictor wraps a trained model and MPF list. Both come from the
// ordinary v4 pipeline; banner-level patterns are address-family agnostic.
func NewPredictor(m *probmodel.Model, mpf *predict.MPF) *Predictor {
	return &Predictor{model: m, mpf: mpf}
}

// Predict expands hitlist anchors into predictions for the remaining
// services on the same hosts. grab returns the known service's feature
// set (the L7 grab against the v6 address).
func (p *Predictor) Predict(hitlist []HitlistEntry, grab func(Addr, uint16) (features.Set, bool)) []Prediction {
	type key struct {
		addr Addr
		port uint16
	}
	best := make(map[key]float64)
	for _, e := range hitlist {
		feats, ok := grab(e.Addr, e.Port)
		if !ok {
			continue
		}
		for _, c := range condsForGrab(e.Port, feats, p.model.Families()) {
			for _, rule := range p.mpf.RulesFor(c) {
				if rule.Port == e.Port {
					continue
				}
				k := key{addr: e.Addr, port: rule.Port}
				if rule.P > best[k] {
					best[k] = rule.P
				}
			}
		}
	}
	out := make([]Prediction, 0, len(best))
	for k, pr := range best {
		out = append(out, Prediction{Addr: k.addr, Port: k.port, P: pr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		if out[i].Addr.Hi != out[j].Addr.Hi {
			return out[i].Addr.Hi < out[j].Addr.Hi
		}
		if out[i].Addr.Lo != out[j].Addr.Lo {
			return out[i].Addr.Lo < out[j].Addr.Lo
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Result summarizes a hitlist prediction run.
type Result struct {
	Hitlist     int
	Predictions int
	Probes      uint64
	Found       int
	// Remaining is the number of ground-truth services on hitlist hosts
	// beyond the known anchors.
	Remaining int
	Coverage  float64
	Precision float64
}

// Evaluate probes the predictions against the v6 universe and scores them
// against the hosts' actual remaining services.
func Evaluate(u *Universe, hitlist []HitlistEntry, preds []Prediction) *Result {
	known := make(map[Addr]uint16, len(hitlist))
	for _, e := range hitlist {
		known[e.Addr] = e.Port
	}
	res := &Result{Hitlist: len(hitlist), Predictions: len(preds)}
	for _, e := range hitlist {
		h, ok := u.HostAt(e.Addr)
		if !ok {
			continue
		}
		for port := range h.Services() {
			if port != e.Port {
				res.Remaining++
			}
		}
	}
	seen := make(map[Prediction]bool)
	for _, p := range preds {
		probe := Prediction{Addr: p.Addr, Port: p.Port}
		if seen[probe] {
			continue
		}
		seen[probe] = true
		res.Probes++
		if u.Responsive(p.Addr, p.Port) && known[p.Addr] != p.Port {
			res.Found++
		}
	}
	if res.Remaining > 0 {
		res.Coverage = float64(res.Found) / float64(res.Remaining)
	}
	if res.Probes > 0 {
		res.Precision = float64(res.Found) / float64(res.Probes)
	}
	return res
}
