package ipv6

import (
	"testing"
	"testing/quick"

	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/netmodel"
	"gps/internal/predict"
	"gps/internal/probmodel"
)

func TestParseAddrCases(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"2001:db8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"::", "::"},
		{"::1", "::1"},
		{"fe80::", "fe80::"},
		{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("String(%q) = %q; want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, s := range []string{"", "1:2:3", "1:2:3:4:5:6:7:8:9", "xyz::", "1::2::3", ":::"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", s)
		}
	}
}

// TestAddrRoundTripQuick property: format/parse round-trips any address.
func TestAddrRoundTripQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := Addr{Hi: hi, Lo: lo}
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := SubnetOf(MustParseAddr("2001:db8:1:2::5"), 64)
	if p.String() != "2001:db8:1:2::/64" {
		t.Errorf("prefix = %q", p)
	}
	if !p.Contains(MustParseAddr("2001:db8:1:2:ffff::1")) {
		t.Error("Contains failed inside /64")
	}
	if p.Contains(MustParseAddr("2001:db8:1:3::1")) {
		t.Error("Contains succeeded outside /64")
	}
	p32 := SubnetOf(MustParseAddr("2001:db8:1:2::5"), 32)
	if !p32.Contains(MustParseAddr("2001:db8:ffff::")) {
		t.Error("/32 Contains failed")
	}
	whole := SubnetOf(MustParseAddr("abcd::"), 0)
	if !whole.Contains(MustParseAddr("::1")) {
		t.Error("/0 must contain everything")
	}
	host := SubnetOf(MustParseAddr("::5"), 128)
	if !host.Contains(MustParseAddr("::5")) || host.Contains(MustParseAddr("::6")) {
		t.Error("/128 semantics wrong")
	}
}

func mirrorSetup(t *testing.T) (*netmodel.Universe, *Universe) {
	t.Helper()
	u4 := netmodel.Generate(netmodel.TestParams(41))
	u6 := Mirror(u4, Params{DualStackFraction: 0.3, Seed: 42})
	return u4, u6
}

func TestMirrorShape(t *testing.T) {
	u4, u6 := mirrorSetup(t)
	if u6.NumHosts() == 0 {
		t.Fatal("no dual-stack hosts")
	}
	frac := float64(u6.NumHosts()) / float64(u4.NumHosts())
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("dual-stack fraction %.2f; want ~0.3", frac)
	}
	for _, h := range u6.Hosts()[:50] {
		// Services identical across stacks.
		for port := range h.Services() {
			if !u6.Responsive(h.Addr, port) {
				t.Fatalf("v6 host %v unresponsive on own port %d", h.Addr, port)
			}
			svc6, _ := u6.ServiceAt(h.Addr, port)
			svc4, _ := h.V4.ServiceAt(port)
			if svc6 != svc4 {
				t.Fatal("v6 service not shared with v4 mirror")
			}
		}
		// Addresses are inside the documentation /32 scheme.
		if h.Addr.Hi>>32 != 0x20010db8 {
			t.Errorf("address %v outside 2001:db8::/32", h.Addr)
		}
	}
}

func TestMirrorDeterministic(t *testing.T) {
	u4 := netmodel.Generate(netmodel.TestParams(41))
	a := Mirror(u4, Params{DualStackFraction: 0.3, Seed: 42})
	b := Mirror(u4, Params{DualStackFraction: 0.3, Seed: 42})
	if a.NumHosts() != b.NumHosts() {
		t.Fatal("mirror not deterministic")
	}
	for i := range a.Hosts() {
		if a.Hosts()[i].Addr != b.Hosts()[i].Addr {
			t.Fatal("mirror addresses differ")
		}
	}
}

func TestHitlistPrediction(t *testing.T) {
	u4, u6 := mirrorSetup(t)

	// Train the ordinary v4 model.
	full := dataset.SnapshotLZR(u4, 0.4, 43)
	seedSet, _ := full.Split(0.02, 44)
	eligible := seedSet.EligiblePorts(2)
	seedSet = seedSet.FilterPorts(eligible)
	hosts := seedSet.ByHost()
	m := probmodel.Build(probmodel.Config{}, hosts)
	mpf := predict.BuildMPF(m, hosts, engine.Config{})

	hitlist := u6.Hitlist(400, 45)
	if len(hitlist) == 0 {
		t.Fatal("empty hitlist")
	}
	pred := NewPredictor(m, mpf)
	preds := pred.Predict(hitlist, func(a Addr, port uint16) (features.Set, bool) {
		svc, ok := u6.ServiceAt(a, port)
		if !ok {
			return nil, false
		}
		return svc.Feats, true
	})
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	// Ordered by probability.
	for i := 1; i < len(preds); i++ {
		if preds[i-1].P < preds[i].P {
			t.Fatal("predictions not sorted")
		}
	}
	res := Evaluate(u6, hitlist, preds)
	t.Logf("hitlist=%d remaining=%d predictions=%d found=%d coverage=%.2f precision=%.2f",
		res.Hitlist, res.Remaining, res.Predictions, res.Found, res.Coverage, res.Precision)
	if res.Coverage < 0.4 {
		t.Errorf("v6 hitlist coverage %.2f; banner patterns should transfer across stacks", res.Coverage)
	}
	if res.Precision < 0.3 {
		t.Errorf("v6 prediction precision %.2f too low", res.Precision)
	}
}
