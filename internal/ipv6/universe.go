package ipv6

import (
	"math/rand"
	"sort"

	"gps/internal/asndb"
	"gps/internal/netmodel"
)

// Host is a dual-stack mirror of a v4 fleet host: the same device, the
// same services, reachable at an IPv6 address.
type Host struct {
	Addr Addr
	ASN  asndb.ASN
	// V4 is the IPv4 identity of the same device; used by tests and by
	// analyses correlating the stacks.
	V4 *netmodel.Host
}

// Services returns the host's services (shared with the v4 mirror).
func (h *Host) Services() map[uint16]*netmodel.Service { return h.V4.Services() }

// Universe is the synthetic IPv6 side of a dual-stack deployment: a
// fraction of the v4 universe's hosts, re-addressed into per-AS /32
// allocations with one customer /64 per host. There is no exhaustive
// scanning here — the address space is unenumerable by design, matching
// the real constraint.
type Universe struct {
	hosts map[Addr]*Host
	list  []*Host
}

// Params configures mirroring.
type Params struct {
	// DualStackFraction is the share of v4 hosts that also speak v6.
	DualStackFraction float64
	Seed              int64
}

// Mirror builds the v6 universe from a v4 one. Each AS gets a /32 derived
// from its number; each dual-stack host gets a stable interface ID inside
// a per-host /64.
func Mirror(u *netmodel.Universe, p Params) *Universe {
	rng := rand.New(rand.NewSource(p.Seed))
	out := &Universe{hosts: make(map[Addr]*Host)}
	for _, h := range u.Hosts() {
		if h.Middlebox {
			continue
		}
		if rng.Float64() >= p.DualStackFraction {
			continue
		}
		addr := addrFor(h)
		v6 := &Host{Addr: addr, ASN: h.ASN, V4: h}
		out.hosts[addr] = v6
		out.list = append(out.list, v6)
	}
	sort.Slice(out.list, func(i, j int) bool {
		a, b := out.list[i].Addr, out.list[j].Addr
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
	return out
}

// addrFor derives a deterministic v6 address for a v4 host: 2001:db8
// documentation space, AS number in the /32, the host's v4 address
// spread across the customer /64, and a stable interface ID.
func addrFor(h *netmodel.Host) Addr {
	hi := uint64(0x20010db8)<<32 | uint64(uint32(h.ASN))<<16 | uint64(uint32(h.IP)>>16)
	lo := uint64(uint32(h.IP))<<32 | 0x1 // ::1 interface ID within the /64
	return Addr{Hi: hi, Lo: lo}
}

// NumHosts returns the dual-stack population size.
func (u *Universe) NumHosts() int { return len(u.list) }

// Hosts returns the hosts sorted by address.
func (u *Universe) Hosts() []*Host { return u.list }

// HostAt returns the host at an address.
func (u *Universe) HostAt(a Addr) (*Host, bool) {
	h, ok := u.hosts[a]
	return h, ok
}

// Responsive reports whether a probe to (addr, port) would be answered.
func (u *Universe) Responsive(a Addr, port uint16) bool {
	h, ok := u.hosts[a]
	return ok && h.V4.Responsive(port)
}

// ServiceAt returns the service at (addr, port).
func (u *Universe) ServiceAt(a Addr, port uint16) (*netmodel.Service, bool) {
	h, ok := u.hosts[a]
	if !ok {
		return nil, false
	}
	return h.V4.ServiceAt(port)
}

// Hitlist samples known (address, port) anchor services: the starting
// point the paper assumes for IPv6 (addresses learned from DNS, traceroute
// or passive sources, each with one known responsive port).
type HitlistEntry struct {
	Addr Addr
	Port uint16
}

// Hitlist returns a deterministic sample of n hosts, each contributing its
// lowest-numbered open port as the known service.
func (u *Universe) Hitlist(n int, seed int64) []HitlistEntry {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(u.list))
	if n > len(perm) {
		n = len(perm)
	}
	out := make([]HitlistEntry, 0, n)
	for _, idx := range perm[:n] {
		h := u.list[idx]
		ports := h.V4.Ports()
		if len(ports) == 0 {
			continue
		}
		out = append(out, HitlistEntry{Addr: h.Addr, Port: ports[0]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Addr, out[j].Addr
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
	return out
}
