// Package zgrab simulates ZGrab, the application-layer handshake tool at
// the end of the GPS scanning pipeline. For every service LZR fingerprints
// as real, ZGrab completes the full Layer-7 handshake and collects the
// application-layer features of Table 1 (banners, TLS certificates, SSH
// keys, version strings).
package zgrab

import (
	"gps/internal/asndb"
	"gps/internal/features"
	"gps/internal/netmodel"
)

// Grab is the result of one full L7 handshake.
type Grab struct {
	IP    asndb.IP
	Port  uint16
	Proto features.Protocol
	// Feats holds the application-layer features parsed out of the
	// session transcript.
	Feats features.Set
	TTL   uint8
	// Transcript is the raw session bytes the features were parsed from.
	Transcript []byte
}

// Source is the network view ZGrab needs; *netmodel.Universe implements it.
type Source interface {
	ServiceAt(ip asndb.IP, port uint16) (*netmodel.Service, bool)
}

// Grabber performs L7 handshakes against a source.
type Grabber struct {
	src Source
}

// New creates a grabber.
func New(src Source) *Grabber { return &Grabber{src: src} }

// Grab completes the full L7 session against (ip, port): the service
// renders its transcript (Session) and the grabber parses the features
// back out of the bytes (Parse). ok is false when the service vanished or
// never existed. Services speaking unknown protocols yield no features.
func (g *Grabber) Grab(ip asndb.IP, port uint16) (Grab, bool) {
	svc, ok := g.src.ServiceAt(ip, port)
	if !ok {
		return Grab{}, false
	}
	transcript := Session(svc)
	return Grab{
		IP: ip, Port: port, Proto: svc.Proto,
		Feats:      Parse(svc.Proto, transcript),
		TTL:        svc.TTL,
		Transcript: transcript,
	}, true
}
