package zgrab

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/features"
	"gps/internal/netmodel"
)

type handSource map[asndb.IP]*netmodel.Host

func (s handSource) ServiceAt(ip asndb.IP, port uint16) (*netmodel.Service, bool) {
	h, ok := s[ip]
	if !ok {
		return nil, false
	}
	return h.ServiceAt(port)
}

func TestGrab(t *testing.T) {
	ip := asndb.MustParseIP("10.0.0.1")
	h := netmodel.NewHost(ip, 1, "t")
	h.AddService(&netmodel.Service{
		Port: 80, Proto: features.ProtocolHTTP, TTL: 55,
		Feats: features.Set{
			features.KeyProtocol:   "http",
			features.KeyHTTPServer: "nginx",
		},
	})
	g := New(handSource{ip: h})

	grab, ok := g.Grab(ip, 80)
	if !ok {
		t.Fatal("grab failed")
	}
	if grab.Proto != features.ProtocolHTTP || grab.TTL != 55 {
		t.Errorf("grab = %+v", grab)
	}
	if v, _ := grab.Feats.Get(features.KeyHTTPServer); v != "nginx" {
		t.Errorf("server feature = %q", v)
	}
	if _, ok := g.Grab(ip, 81); ok {
		t.Error("grab on closed port succeeded")
	}
	if _, ok := g.Grab(asndb.MustParseIP("10.0.0.2"), 80); ok {
		t.Error("grab on missing host succeeded")
	}
}
