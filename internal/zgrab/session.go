package zgrab

import (
	"bytes"
	"fmt"
	"strings"

	"gps/internal/features"
	"gps/internal/netmodel"
)

// This file synthesizes and parses full application-layer sessions. Where
// lzr.Banner produces just enough bytes to identify a protocol, Session
// produces the complete exchange ZGrab drives — the HTTP response with all
// headers and body, the TLS certificate fields, the SSH key exchange — and
// Parse extracts the Table-1 feature set back out of those bytes. The
// grab pipeline runs entirely through this codec, so features observed by
// GPS genuinely traveled as protocol payloads: Parse(Session(svc)) must
// equal svc's feature set, which tests enforce for every protocol.

// Session renders the full L7 transcript of a service.
func Session(svc *netmodel.Service) []byte {
	get := func(k features.Key) (string, bool) { return svc.Feats.Get(k) }
	var b bytes.Buffer
	switch svc.Proto {
	case features.ProtocolHTTP:
		b.WriteString("HTTP/1.1 200 OK\r\n")
		if v, ok := get(features.KeyHTTPServer); ok {
			fmt.Fprintf(&b, "Server: %s\r\n", v)
		}
		if v, ok := get(features.KeyHTTPHeader); ok {
			fmt.Fprintf(&b, "X-Fingerprint: %s\r\n", v)
		}
		b.WriteString("Content-Type: text/html\r\n\r\n<html><head>")
		if v, ok := get(features.KeyHTTPTitle); ok {
			fmt.Fprintf(&b, "<title>%s</title>", v)
		}
		b.WriteString("</head><body")
		if v, ok := get(features.KeyHTTPBodyHash); ok {
			fmt.Fprintf(&b, " data-hash=%q", v)
		}
		b.WriteString("></body></html>")

	case features.ProtocolTLS:
		// ServerHello record prefix, then the certificate fields as the
		// parsed-out values ZGrab reports.
		b.Write([]byte{0x16, 0x03, 0x03, 0x00, 0x00, 0x02})
		b.WriteString("\r\n")
		writeAttr(&b, "fingerprint_sha256", svc.Feats, features.KeyTLSCertHash)
		writeAttr(&b, "subject_dn", svc.Feats, features.KeyTLSSubject)
		writeAttr(&b, "organization", svc.Feats, features.KeyTLSOrg)

	case features.ProtocolSSH:
		if v, ok := get(features.KeySSHBanner); ok {
			b.WriteString(v)
		} else {
			b.WriteString("SSH-2.0-unknown")
		}
		b.WriteString("\r\n")
		writeAttr(&b, "host_key_sha256", svc.Feats, features.KeySSHHostKey)

	case features.ProtocolTelnet:
		b.Write([]byte{0xff, 0xfd, 0x18, 0xff, 0xfb, 0x01})
		if v, ok := get(features.KeyTelnetBanner); ok {
			b.WriteString(v)
		}

	case features.ProtocolVNC:
		b.WriteString("RFB 003.008\n")
		writeAttr(&b, "desktop_name", svc.Feats, features.KeyVNCDesktopName)

	case features.ProtocolSMTP:
		writeBannerLine(&b, svc.Feats, features.KeySMTPBanner, "220 ESMTP")
	case features.ProtocolFTP:
		writeBannerLine(&b, svc.Feats, features.KeyFTPBanner, "220 FTP")
	case features.ProtocolPOP3:
		writeBannerLine(&b, svc.Feats, features.KeyPOP3Banner, "+OK POP3")
	case features.ProtocolIMAP:
		writeBannerLine(&b, svc.Feats, features.KeyIMAPBanner, "* OK IMAP4")

	case features.ProtocolCWMP:
		b.WriteString("HTTP/1.1 200 OK\r\n")
		if v, ok := get(features.KeyCWMPHeader); ok {
			fmt.Fprintf(&b, "Server: %s\r\n", v)
		}
		b.WriteString("SOAPServer: cwmp\r\n")
		if v, ok := get(features.KeyCWMPBodyHash); ok {
			fmt.Fprintf(&b, "X-Body-Hash: %s\r\n", v)
		}
		b.WriteString("\r\n")

	case features.ProtocolMySQL:
		b.Write([]byte{0x4a, 0x00, 0x00, 0x00, 0x0a})
		if v, ok := get(features.KeyMySQLVersion); ok {
			b.WriteString(v)
		}
		b.WriteByte(0x00)

	case features.ProtocolMSSQL:
		b.Write([]byte{0x04, 0x01, 0x00, 0x25})
		b.WriteString("\r\n")
		writeAttr(&b, "version", svc.Feats, features.KeyMSSQLVersion)

	case features.ProtocolMemcached:
		if v, ok := get(features.KeyMemcachedVersion); ok {
			fmt.Fprintf(&b, "VERSION %s\r\n", v)
		} else {
			b.WriteString("VERSION unknown\r\n")
		}

	case features.ProtocolPPTP:
		b.Write([]byte{0x00, 0x9c, 0x00, 0x01, 0x1a, 0x2b, 0x3c, 0x4d, 0x00, 0x02})
		b.WriteString("\r\n")
		writeAttr(&b, "vendor", svc.Feats, features.KeyPPTPVendor)

	case features.ProtocolIPMI:
		b.Write([]byte{0x06, 0x00, 0xff, 0x07, 0x06})
		b.WriteString("\r\n")
		writeAttr(&b, "banner", svc.Feats, features.KeyIPMIBanner)

	default:
		return nil
	}
	return b.Bytes()
}

func writeAttr(b *bytes.Buffer, name string, feats features.Set, k features.Key) {
	if v, ok := feats.Get(k); ok {
		fmt.Fprintf(b, "%s: %s\r\n", name, v)
	}
}

func writeBannerLine(b *bytes.Buffer, feats features.Set, k features.Key, def string) {
	v, ok := feats.Get(k)
	if !ok {
		v = def
	}
	b.WriteString(v)
	b.WriteString("\r\n")
}

// Parse extracts the feature set from a session transcript. The protocol
// is known from LZR's fingerprint; the transcript came off the (simulated)
// wire.
func Parse(proto features.Protocol, transcript []byte) features.Set {
	out := make(features.Set)
	if proto != features.ProtocolUnknown {
		out[features.KeyProtocol] = proto.String()
	}
	s := string(transcript)
	switch proto {
	case features.ProtocolHTTP:
		parseHTTP(s, out)
	case features.ProtocolTLS:
		parseAttrs(s, out, map[string]features.Key{
			"fingerprint_sha256": features.KeyTLSCertHash,
			"subject_dn":         features.KeyTLSSubject,
			"organization":       features.KeyTLSOrg,
		})
	case features.ProtocolSSH:
		if line, _, ok := strings.Cut(s, "\r\n"); ok && line != "SSH-2.0-unknown" {
			out[features.KeySSHBanner] = line
		}
		parseAttrs(s, out, map[string]features.Key{
			"host_key_sha256": features.KeySSHHostKey,
		})
	case features.ProtocolTelnet:
		if len(transcript) > 6 {
			out[features.KeyTelnetBanner] = string(transcript[6:])
		}
	case features.ProtocolVNC:
		parseAttrs(s, out, map[string]features.Key{
			"desktop_name": features.KeyVNCDesktopName,
		})
	case features.ProtocolSMTP:
		parseBannerLine(s, out, features.KeySMTPBanner, "220 ESMTP")
	case features.ProtocolFTP:
		parseBannerLine(s, out, features.KeyFTPBanner, "220 FTP")
	case features.ProtocolPOP3:
		parseBannerLine(s, out, features.KeyPOP3Banner, "+OK POP3")
	case features.ProtocolIMAP:
		parseBannerLine(s, out, features.KeyIMAPBanner, "* OK IMAP4")
	case features.ProtocolCWMP:
		for _, line := range strings.Split(s, "\r\n") {
			if v, ok := strings.CutPrefix(line, "Server: "); ok {
				out[features.KeyCWMPHeader] = v
			}
			if v, ok := strings.CutPrefix(line, "X-Body-Hash: "); ok {
				out[features.KeyCWMPBodyHash] = v
			}
		}
	case features.ProtocolMySQL:
		if len(transcript) > 5 {
			if end := bytes.IndexByte(transcript[5:], 0x00); end >= 0 && end > 0 {
				out[features.KeyMySQLVersion] = string(transcript[5 : 5+end])
			}
		}
	case features.ProtocolMSSQL:
		parseAttrs(s, out, map[string]features.Key{"version": features.KeyMSSQLVersion})
	case features.ProtocolMemcached:
		if line, _, ok := strings.Cut(s, "\r\n"); ok {
			if v, okV := strings.CutPrefix(line, "VERSION "); okV && v != "unknown" {
				out[features.KeyMemcachedVersion] = v
			}
		}
	case features.ProtocolPPTP:
		parseAttrs(s, out, map[string]features.Key{"vendor": features.KeyPPTPVendor})
	case features.ProtocolIPMI:
		parseAttrs(s, out, map[string]features.Key{"banner": features.KeyIPMIBanner})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// parseHTTP extracts the server header, fingerprint header, HTML title,
// and body hash from an HTTP response.
func parseHTTP(s string, out features.Set) {
	head, body, _ := strings.Cut(s, "\r\n\r\n")
	for _, line := range strings.Split(head, "\r\n") {
		if v, ok := strings.CutPrefix(line, "Server: "); ok {
			out[features.KeyHTTPServer] = v
		}
		if v, ok := strings.CutPrefix(line, "X-Fingerprint: "); ok {
			out[features.KeyHTTPHeader] = v
		}
	}
	if i := strings.Index(body, "<title>"); i >= 0 {
		if j := strings.Index(body[i:], "</title>"); j >= 0 {
			out[features.KeyHTTPTitle] = body[i+len("<title>") : i+j]
		}
	}
	if i := strings.Index(body, `data-hash="`); i >= 0 {
		rest := body[i+len(`data-hash="`):]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			out[features.KeyHTTPBodyHash] = rest[:j]
		}
	}
}

// parseAttrs extracts "name: value" lines; it tolerates both CRLF and
// bare-LF line endings (VNC's RFB greeting ends in LF).
func parseAttrs(s string, out features.Set, keys map[string]features.Key) {
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSuffix(line, "\r")
		name, v, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		if key, okK := keys[name]; okK {
			out[key] = v
		}
	}
}

// parseBannerLine stores the first line unless it is the default filler.
func parseBannerLine(s string, out features.Set, key features.Key, def string) {
	if line, _, ok := strings.Cut(s, "\r\n"); ok && line != def {
		out[key] = line
	}
}
