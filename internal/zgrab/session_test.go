package zgrab

import (
	"testing"

	"gps/internal/features"
	"gps/internal/netmodel"
)

// TestSessionParseRoundTripAllProtocols: for every protocol, Parse must
// recover exactly the feature set Session encoded.
func TestSessionParseRoundTripAllProtocols(t *testing.T) {
	sets := map[features.Protocol]features.Set{
		features.ProtocolHTTP: {
			features.KeyProtocol:     "http",
			features.KeyHTTPServer:   "nginx/1.24",
			features.KeyHTTPHeader:   "hdr-v1",
			features.KeyHTTPTitle:    "Router Admin",
			features.KeyHTTPBodyHash: "bh-12345",
		},
		features.ProtocolTLS: {
			features.KeyProtocol:    "tls",
			features.KeyTLSCertHash: "cert#00ff",
			features.KeyTLSSubject:  "subj#abc",
			features.KeyTLSOrg:      "org@AS9",
		},
		features.ProtocolSSH: {
			features.KeyProtocol:   "ssh",
			features.KeySSHBanner:  "SSH-2.0-OpenSSH_9.0",
			features.KeySSHHostKey: "hostkey#77",
		},
		features.ProtocolTelnet: {
			features.KeyProtocol:     "telnet",
			features.KeyTelnetBanner: "BusyBox login",
		},
		features.ProtocolVNC: {
			features.KeyProtocol:       "vnc",
			features.KeyVNCDesktopName: "office-pc",
		},
		features.ProtocolSMTP: {
			features.KeyProtocol:   "smtp",
			features.KeySMTPBanner: "220 mail ESMTP Postfix",
		},
		features.ProtocolFTP: {
			features.KeyProtocol:  "ftp",
			features.KeyFTPBanner: "220 ProFTPD ready",
		},
		features.ProtocolPOP3: {
			features.KeyProtocol:   "pop3",
			features.KeyPOP3Banner: "+OK dovecot ready",
		},
		features.ProtocolIMAP: {
			features.KeyProtocol:   "imap",
			features.KeyIMAPBanner: "* OK IMAP ready",
		},
		features.ProtocolCWMP: {
			features.KeyProtocol:     "cwmp",
			features.KeyCWMPHeader:   "fritz-cwmp",
			features.KeyCWMPBodyHash: "cwmp-body/v3",
		},
		features.ProtocolMySQL: {
			features.KeyProtocol:     "mysql",
			features.KeyMySQLVersion: "8.0/v2",
		},
		features.ProtocolMSSQL: {
			features.KeyProtocol:     "mssql",
			features.KeyMSSQLVersion: "15.0/v1",
		},
		features.ProtocolMemcached: {
			features.KeyProtocol:         "memcached",
			features.KeyMemcachedVersion: "1.6/v0",
		},
		features.ProtocolPPTP: {
			features.KeyProtocol:   "pptp",
			features.KeyPPTPVendor: "linux-pptpd/v4",
		},
		features.ProtocolIPMI: {
			features.KeyProtocol:   "ipmi",
			features.KeyIPMIBanner: "IPMI-2.0/v1",
		},
	}
	for proto, feats := range sets {
		svc := &netmodel.Service{Port: 1234, Proto: proto, Feats: feats}
		got := Parse(proto, Session(svc))
		if len(got) != len(feats) {
			t.Errorf("%v: parsed %d features; want %d (%v vs %v)", proto, len(got), len(feats), got, feats)
			continue
		}
		for k, v := range feats {
			if got[k] != v {
				t.Errorf("%v: feature %v = %q; want %q", proto, k, got[k], v)
			}
		}
	}
}

// TestSessionParsePartialFeatures: services missing optional features must
// round-trip without inventing values.
func TestSessionParsePartialFeatures(t *testing.T) {
	svc := &netmodel.Service{Port: 80, Proto: features.ProtocolHTTP,
		Feats: features.Set{
			features.KeyProtocol:   "http",
			features.KeyHTTPServer: "only-server",
		}}
	got := Parse(svc.Proto, Session(svc))
	if len(got) != 2 {
		t.Errorf("parsed %d features; want 2: %v", len(got), got)
	}
	if got[features.KeyHTTPServer] != "only-server" {
		t.Error("server header lost")
	}
}

// TestSessionUnknownProtocol: unknown services produce no transcript and
// no features.
func TestSessionUnknownProtocol(t *testing.T) {
	svc := &netmodel.Service{Port: 5555, Proto: features.ProtocolUnknown}
	if tr := Session(svc); tr != nil {
		t.Errorf("unknown protocol produced transcript %q", tr)
	}
	if f := Parse(features.ProtocolUnknown, nil); f != nil {
		t.Errorf("unknown protocol parsed features %v", f)
	}
}

// TestUniverseGrabRoundTrip: every service in a generated universe must
// survive the Session/Parse pipeline bit-exactly — this is the guarantee
// that makes the byte-level grab a drop-in for direct feature access.
func TestUniverseGrabRoundTrip(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(71))
	g := New(u)
	checked := 0
	for _, h := range u.Hosts() {
		if h.Middlebox {
			continue
		}
		for port, svc := range h.Services() {
			grab, ok := g.Grab(h.IP, port)
			if !ok {
				t.Fatalf("grab failed for %v:%d", h.IP, port)
			}
			if len(grab.Feats) != len(svc.Feats) {
				t.Fatalf("%v:%d (%v): parsed %d features; want %d\n  got  %v\n  want %v",
					h.IP, port, svc.Proto, len(grab.Feats), len(svc.Feats), grab.Feats, svc.Feats)
			}
			for k, v := range svc.Feats {
				if grab.Feats[k] != v {
					t.Fatalf("%v:%d: feature %v = %q; want %q", h.IP, port, k, grab.Feats[k], v)
				}
			}
			checked++
		}
		if checked > 5000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
