package engine

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestGroupCountBasic(t *testing.T) {
	items := []string{"a", "b", "a", "c", "a", "b"}
	got := GroupCount(Config{}, nil, items, func(s string, emit Emit[string, uint64]) {
		emit(s, 1)
	})
	want := map[string]uint64{"a": 3, "b": 2, "c": 1}
	if len(got) != len(want) {
		t.Fatalf("got %d keys; want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %d; want %d", k, got[k], v)
		}
	}
}

func TestGroupCountEmpty(t *testing.T) {
	got := GroupCount(Config{}, nil, nil, func(int, Emit[int, uint64]) {})
	if len(got) != 0 {
		t.Errorf("empty input produced %d keys", len(got))
	}
}

// TestMapReduceParallelMatchesSerial property: results are identical for
// 1 worker and N workers, for random inputs.
func TestMapReduceParallelMatchesSerial(t *testing.T) {
	f := func(data []uint16) bool {
		mapFn := func(v uint16, emit Emit[uint16, uint64]) {
			emit(v%64, uint64(v))
			emit(v%7, 1)
		}
		add := func(a, b uint64) uint64 { return a + b }
		serial := MapReduce(Config{Workers: 1}, nil, data, mapFn, add)
		parallel := MapReduce(Config{Workers: 8}, nil, data, mapFn, add)
		if len(serial) != len(parallel) {
			return false
		}
		for k, v := range serial {
			if parallel[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapReduceMaxReduce(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	got := MapReduce(Config{}, nil, items, func(v int, emit Emit[string, int]) {
		emit("max", v)
	}, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got["max"] != 9 {
		t.Errorf("max = %d; want 9", got["max"])
	}
}

func TestMapReduceStats(t *testing.T) {
	var stats Stats
	items := make([]int, 100)
	MapReduce(Config{Workers: 4}, &stats, items, func(v int, emit Emit[int, uint64]) {
		emit(v, 1)
		emit(v+1, 1)
	}, func(a, b uint64) uint64 { return a + b })
	if got := stats.RecordsIn.Load(); got != 100 {
		t.Errorf("RecordsIn = %d; want 100", got)
	}
	if got := stats.PairsEmitted.Load(); got != 200 {
		t.Errorf("PairsEmitted = %d; want 200", got)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 1000
		var covered [1000]atomic.Bool
		ParallelFor(Config{Workers: workers}, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i].Swap(true) {
					t.Errorf("index %d visited twice", i)
				}
			}
		})
		for i := range covered {
			if !covered[i].Load() {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(Config{}, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for n=0")
	}
}

func TestConfigResolve(t *testing.T) {
	if (Config{Workers: 3}).Resolve() != 3 {
		t.Error("explicit workers not honored")
	}
	if (Config{}).Resolve() < 1 {
		t.Error("default workers must be >= 1")
	}
}

func TestMapReduceMoreWorkersThanItems(t *testing.T) {
	got := MapReduce(Config{Workers: 64}, nil, []int{1, 2}, func(v int, emit Emit[int, uint64]) {
		emit(v, 1)
	}, func(a, b uint64) uint64 { return a + b })
	if len(got) != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("got %v", got)
	}
}

func TestMapReduceShardsKnob(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	want := MapReduce(Config{Workers: 1}, nil, items,
		func(v int, emit Emit[int, uint64]) { emit(v%37, 1) },
		func(a, b uint64) uint64 { return a + b })
	// The result must be identical whatever the shuffle fan-out,
	// including more shards than workers and more workers than shards.
	for _, cfg := range []Config{{Workers: 2, Shards: 16}, {Workers: 8, Shards: 1}, {Shards: 3}} {
		got := MapReduce(cfg, nil, items,
			func(v int, emit Emit[int, uint64]) { emit(v%37, 1) },
			func(a, b uint64) uint64 { return a + b })
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: %d keys; want %d", cfg, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("cfg %+v: key %d = %d; want %d", cfg, k, got[k], v)
			}
		}
	}
	if (Config{Shards: 5}).ResolveShards(2) != 5 {
		t.Error("explicit shard count not honored")
	}
	if (Config{}).ResolveShards(2) != 2 {
		t.Error("default shard count must match workers")
	}
}
