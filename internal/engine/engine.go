// Package engine is a small parallel aggregation engine: the stand-in for
// Google BigQuery in the GPS pipeline (§5.5). The paper's key systems
// claim is that GPS's conditional-probability computation is
// embarrassingly parallel — a map/shuffle/reduce over (feature, port)
// pairs — so a serverless warehouse executes it in minutes while a single
// core needs days. This engine implements exactly that shape: workers map
// input shards to key/value pairs, a hash shuffle routes pairs to
// reducers, and reducers merge concurrently. Setting Workers to 1 gives
// the paper's single-core comparison point (§6.5, Table 2).
package engine

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls execution.
type Config struct {
	// Workers is the mapper/reducer parallelism; 0 means GOMAXPROCS.
	Workers int
	// Shards overrides the shuffle shard count (the number of reducer
	// partitions the key space is hashed into); 0 matches it to the
	// worker count. More shards than workers models a warehouse whose
	// shuffle fan-out exceeds its slot count — useful for sizing the
	// cross-shard merge — at the cost of smaller per-shard maps.
	Shards int
}

// Resolve returns the effective worker count.
func (c Config) Resolve() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ResolveShards returns the effective shuffle shard count given the
// resolved worker count.
func (c Config) ResolveShards(workers int) int {
	if c.Shards > 0 {
		return c.Shards
	}
	return workers
}

// Stats accumulates engine work counters, the analogue of BigQuery's
// "data processed / shuffled" accounting in Table 2.
type Stats struct {
	RecordsIn    atomic.Uint64 // input records mapped
	PairsEmitted atomic.Uint64 // key/value pairs shuffled
}

// Emit is the callback mappers use to produce a key/value pair.
type Emit[K comparable, V any] func(K, V)

// MapReduce runs mapFn over items in parallel, shuffles emitted pairs by
// key hash, and folds values per key with reduceFn. The result map holds
// one entry per distinct key. Deterministic given deterministic callbacks:
// reduceFn must be commutative and associative.
func MapReduce[T any, K comparable, V any](
	cfg Config, stats *Stats, items []T,
	mapFn func(T, Emit[K, V]),
	reduceFn func(V, V) V,
) map[K]V {
	workers := cfg.Resolve()
	if workers > len(items) && len(items) > 0 {
		workers = len(items)
	}
	if len(items) == 0 {
		return map[K]V{}
	}
	// Each mapper owns `shards` maps; reducer s merges shard s of every
	// mapper. By default the shard count equals the worker count so
	// reduce parallelism matches map parallelism; Config.Shards overrides
	// it.
	shards := cfg.ResolveShards(workers)
	seed := maphash.MakeSeed()
	local := make([][]map[K]V, workers)

	var wg sync.WaitGroup
	chunk := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			local[w] = make([]map[K]V, shards)
			for s := range local[w] {
				local[w][s] = map[K]V{}
			}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			mine := make([]map[K]V, shards)
			for s := range mine {
				mine[s] = make(map[K]V)
			}
			var pairs, recs uint64
			emit := func(k K, v V) {
				s := int(maphash.Comparable(seed, k) % uint64(shards))
				m := mine[s]
				if old, ok := m[k]; ok {
					m[k] = reduceFn(old, v)
				} else {
					m[k] = v
				}
				pairs++
			}
			for i := lo; i < hi; i++ {
				mapFn(items[i], emit)
				recs++
			}
			local[w] = mine
			if stats != nil {
				stats.RecordsIn.Add(recs)
				stats.PairsEmitted.Add(pairs)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Reduce phase: merge shard s across all mappers, in parallel.
	merged := make([]map[K]V, shards)
	var rg sync.WaitGroup
	for s := 0; s < shards; s++ {
		rg.Add(1)
		go func(s int) {
			defer rg.Done()
			dst := local[0][s]
			for w := 1; w < workers; w++ {
				for k, v := range local[w][s] {
					if old, ok := dst[k]; ok {
						dst[k] = reduceFn(old, v)
					} else {
						dst[k] = v
					}
				}
			}
			merged[s] = dst
		}(s)
	}
	rg.Wait()

	// Collapse shards into one map for the caller.
	total := 0
	for _, m := range merged {
		total += len(m)
	}
	out := make(map[K]V, total)
	for _, m := range merged {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// GroupCount is MapReduce specialized to counting keys.
func GroupCount[T any, K comparable](cfg Config, stats *Stats, items []T, keysOf func(T, Emit[K, uint64])) map[K]uint64 {
	return MapReduce(cfg, stats, items, keysOf, func(a, b uint64) uint64 { return a + b })
}

// ParallelFor splits [0, n) into contiguous chunks and runs body on each
// chunk concurrently.
func ParallelFor(cfg Config, n int, body func(lo, hi int)) {
	workers := cfg.Resolve()
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
