package netmodel

import (
	"testing"
	"testing/quick"

	"gps/internal/asndb"
	"gps/internal/features"
)

func testUniverse(t *testing.T) *Universe {
	t.Helper()
	return Generate(TestParams(5))
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestParams(5))
	b := Generate(TestParams(5))
	if a.NumHosts() != b.NumHosts() || a.NumServices() != b.NumServices() {
		t.Fatalf("same seed produced different universes: %d/%d vs %d/%d hosts/services",
			a.NumHosts(), a.NumServices(), b.NumHosts(), b.NumServices())
	}
	ha, hb := a.Hosts(), b.Hosts()
	for i := range ha {
		if ha[i].IP != hb[i].IP || ha[i].Profile != hb[i].Profile {
			t.Fatalf("host %d differs: %v/%s vs %v/%s", i, ha[i].IP, ha[i].Profile, hb[i].IP, hb[i].Profile)
		}
		pa, pb := ha[i].Ports(), hb[i].Ports()
		if len(pa) != len(pb) {
			t.Fatalf("host %v port count differs", ha[i].IP)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("host %v ports differ", ha[i].IP)
			}
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a := Generate(TestParams(5))
	b := Generate(TestParams(6))
	if a.NumHosts() == b.NumHosts() && a.NumServices() == b.NumServices() {
		// Counts could coincide, but host placement should not.
		same := true
		for i, h := range a.Hosts() {
			if i >= 100 {
				break
			}
			if bh, ok := b.HostAt(h.IP); !ok || bh.Profile != h.Profile {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical placements")
		}
	}
}

func TestUniverseBasicShape(t *testing.T) {
	u := testUniverse(t)
	p := TestParams(5)
	if got := u.SpaceSize(); got != uint64(p.NumPrefix16)*65536 {
		t.Errorf("SpaceSize = %d", got)
	}
	wantHosts := float64(u.SpaceSize()) * p.HostDensity
	if float64(u.NumHosts()) < 0.5*wantHosts || float64(u.NumHosts()) > 1.2*wantHosts {
		t.Errorf("NumHosts = %d; want ~%.0f", u.NumHosts(), wantHosts)
	}
	if len(u.ASes()) != p.NumASes {
		t.Errorf("ASes = %d; want %d", len(u.ASes()), p.NumASes)
	}
	// Every host's ASN must agree with the routing table.
	for _, h := range u.Hosts()[:100] {
		asn, ok := u.ASNOf(h.IP)
		if !ok || asn != h.ASN {
			t.Errorf("host %v ASN mismatch: %v vs %v", h.IP, h.ASN, asn)
		}
	}
}

func TestResponsiveQueries(t *testing.T) {
	u := testUniverse(t)
	var sample *Host
	for _, h := range u.Hosts() {
		if !h.Middlebox && len(h.Services()) > 0 {
			sample = h
			break
		}
	}
	if sample == nil {
		t.Fatal("no regular host found")
	}
	port := sample.Ports()[0]
	if !u.Responsive(sample.IP, port) {
		t.Error("host not responsive on its own port")
	}
	svc, ok := u.ServiceAt(sample.IP, port)
	if !ok || svc.Port != port {
		t.Error("ServiceAt failed")
	}
	// An unoccupied address responds to nothing.
	for off := asndb.IP(0); off < 65536; off++ {
		ip := u.Prefixes()[0].Addr + off
		if _, occupied := u.HostAt(ip); !occupied {
			if u.Responsive(ip, 80) {
				t.Error("empty address responded")
			}
			break
		}
	}
}

func TestAddrAtIndexOfRoundTrip(t *testing.T) {
	u := testUniverse(t)
	f := func(raw uint32) bool {
		i := uint64(raw) % u.SpaceSize()
		ip := u.AddrAt(i)
		back, ok := u.IndexOf(ip)
		return ok && back == i && u.Contains(ip)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if u.Contains(asndb.MustParseIP("10.0.0.1")) {
		t.Error("RFC1918 space must not be announced")
	}
}

func TestResponsiveInMatchesNaive(t *testing.T) {
	u := testUniverse(t)
	pfx := u.Prefixes()[0]
	sub := asndb.Prefix{Addr: pfx.Addr, Bits: 20}
	for _, port := range []uint16{80, 22, 7547} {
		fast := u.ResponsiveIn(sub, port)
		var naive []asndb.IP
		for off := asndb.IP(0); off < asndb.IP(sub.Size()); off++ {
			if u.Responsive(sub.Addr+off, port) {
				naive = append(naive, sub.Addr+off)
			}
		}
		if len(fast) != len(naive) {
			t.Fatalf("port %d: fast %d vs naive %d", port, len(fast), len(naive))
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("port %d: order differs at %d", port, i)
			}
		}
	}
}

func TestAnnouncedWithin(t *testing.T) {
	u := testUniverse(t)
	whole := u.AnnouncedWithin(asndb.Prefix{Bits: 0})
	if len(whole) != len(u.Prefixes()) {
		t.Errorf("/0 covers %d prefixes; want %d", len(whole), len(u.Prefixes()))
	}
	first := u.Prefixes()[0]
	sub := asndb.Prefix{Addr: first.Addr, Bits: 20}
	in := u.AnnouncedWithin(sub)
	if len(in) != 1 || in[0] != sub {
		t.Errorf("announced /20 not returned: %v", in)
	}
	if got := u.AnnouncedWithin(asndb.MustPrefix(asndb.MustParseIP("10.0.0.0"), 24)); got != nil {
		t.Errorf("unannounced space returned %v", got)
	}
}

func TestPseudoBlocks(t *testing.T) {
	u := testUniverse(t)
	found := false
	for _, h := range u.Hosts() {
		lo, hi, ok := h.PseudoBlock()
		if !ok {
			continue
		}
		found = true
		if hi < lo {
			t.Errorf("pseudo block inverted: %d-%d", lo, hi)
		}
		svc, ok := h.ServiceAt(lo + (hi-lo)/2)
		if !ok || !svc.Pseudo {
			t.Error("pseudo block port did not synthesize a pseudo service")
		}
		if h.NumServices() <= int(hi-lo) {
			t.Error("NumServices must include the pseudo block")
		}
		if !h.Responsive(lo) || !h.Responsive(hi) {
			t.Error("pseudo block edges unresponsive")
		}
		break
	}
	if !found {
		t.Error("no pseudo-block hosts generated")
	}
}

func TestMiddleboxes(t *testing.T) {
	u := testUniverse(t)
	n := 0
	for _, h := range u.Hosts() {
		if h.Middlebox {
			n++
			if !h.Responsive(1) || !h.Responsive(65535) {
				t.Error("middlebox must acknowledge every port")
			}
			if _, ok := h.ServiceAt(80); ok {
				t.Error("middlebox must have no services")
			}
		}
	}
	if n == 0 {
		t.Error("no middleboxes generated")
	}
}

func TestHostPortsSorted(t *testing.T) {
	u := testUniverse(t)
	for _, h := range u.Hosts()[:200] {
		ports := h.Ports()
		for i := 1; i < len(ports); i++ {
			if ports[i-1] >= ports[i] {
				t.Fatalf("host %v ports not sorted: %v", h.IP, ports)
			}
		}
	}
}

func TestHostAddRemoveService(t *testing.T) {
	h := NewHost(1, 1, "test")
	h.AddService(&Service{Port: 80, Proto: features.ProtocolHTTP})
	h.AddService(&Service{Port: 22, Proto: features.ProtocolSSH})
	if len(h.Ports()) != 2 || h.Ports()[0] != 22 {
		t.Errorf("ports = %v", h.Ports())
	}
	h.RemoveService(22)
	if len(h.Ports()) != 1 || h.Ports()[0] != 80 {
		t.Errorf("after remove: %v", h.Ports())
	}
	if h.Responsive(22) {
		t.Error("removed service still responsive")
	}
}

func TestPortPopulationLongTail(t *testing.T) {
	u := testUniverse(t)
	pop := u.PortPopulation()
	open := 0
	for _, c := range pop {
		if c > 0 {
			open++
		}
	}
	// The long tail: far more than the handful of assigned ports, far
	// fewer than all 65536.
	if open < 100 {
		t.Errorf("only %d open ports; want a long tail", open)
	}
	if pop[80] < pop[8082] || pop[80] < pop[2323] {
		t.Error("port 80 must be more popular than uncommon ports")
	}
}

func TestChurnShape(t *testing.T) {
	u := testUniverse(t)
	after := Churn(u, DefaultChurn(9))
	if after.NumHosts() >= u.NumHosts() {
		t.Errorf("churn grew hosts: %d -> %d", u.NumHosts(), after.NumHosts())
	}
	// Churn must never add services.
	for _, h := range after.Hosts()[:300] {
		orig, ok := u.HostAt(h.IP)
		if !ok {
			t.Fatalf("churn invented host %v", h.IP)
		}
		for port := range h.Services() {
			if _, had := orig.ServiceAt(port); !had {
				t.Fatalf("churn invented service %v:%d", h.IP, port)
			}
		}
	}
	// And the original universe must be untouched.
	fresh := Generate(TestParams(5))
	if fresh.NumServices() != u.NumServices() {
		t.Error("Churn mutated its input universe")
	}
}

func TestGenerateBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with zero params did not panic")
		}
	}()
	Generate(Params{})
}

func TestFeatureScopes(t *testing.T) {
	u := testUniverse(t)
	// Fleet-scoped values repeat across hosts; per-host values are
	// unique. FRITZ!Box's HTTP server header is fleet-scoped.
	servers := make(map[string]int)
	certs := make(map[string]int)
	for _, h := range u.Hosts() {
		if h.Profile != "fritzbox" {
			continue
		}
		if svc, ok := h.ServiceAt(80); ok {
			servers[svc.Feats[features.KeyHTTPServer]]++
		}
		if svc, ok := h.ServiceAt(443); ok {
			certs[svc.Feats[features.KeyTLSCertHash]]++
		}
	}
	if len(servers) != 1 {
		t.Errorf("fleet-scoped HTTP server has %d values; want 1", len(servers))
	}
	for v, n := range certs {
		if n > 1 {
			t.Errorf("per-host cert %q repeated %d times", v, n)
		}
	}
}
