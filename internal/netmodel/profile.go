package netmodel

import (
	"fmt"
	"math/rand"

	"gps/internal/features"
)

// Scope controls how a feature value varies across the hosts of a fleet.
// The mix of scopes is what gives each feature its dimensionality (Table 1)
// and its predictive power: fleet-scoped banners identify the manufacturer
// (highly predictive of the fleet's other ports), per-AS values identify
// the operator, and per-host values identify the individual machine.
type Scope uint8

// Feature value scopes.
const (
	ScopeFleet   Scope = iota // identical on every host of the profile
	ScopePerAS                // one value per (profile, ASN) pair
	ScopePerHost              // unique per host (keys, cert hashes)
	ScopeVariant              // a handful of firmware variants per fleet
)

// FeatureTemplate declares one application-layer feature a service exposes.
type FeatureTemplate struct {
	Key   features.Key
	Scope Scope
	Base  string // base label; scoped suffixes are appended at generation
}

// ServiceTemplate declares one service a profile's hosts may run.
type ServiceTemplate struct {
	// Ports lists candidate ports. With PickOne the host opens exactly
	// one of them (chosen uniformly); otherwise it opens all of them.
	Ports   []uint16
	PickOne bool
	// Prob is the per-host probability the service is present at all.
	// 1.0 means every host of the fleet ships with it.
	Prob  float64
	Proto features.Protocol
	Feats []FeatureTemplate
	// RandomPort replaces the port with a uniform draw from
	// [RandomPortMin, 65535]; combined with Forwarded it models the
	// fundamentally unpredictable port-forwarded services of §7.
	RandomPort    bool
	RandomPortMin uint16
	Forwarded     bool
}

// Profile is a device fleet: a weighted population of hosts sharing a
// manufactured port set, banner values, and network placement.
type Profile struct {
	Name   string
	Weight float64 // relative share of the host population
	// ASTypes lists the AS categories this fleet appears in.
	ASTypes []ASType
	// Concentration is the fraction of eligible /16 blocks the fleet
	// actually occupies. Low values produce the tight subnet clustering
	// that makes network features predictive (§4); 1.0 spreads the
	// fleet everywhere (the paper's Android TV example).
	Concentration float64
	// SingleAS pins the fleet to exactly one AS (the paper's Freebox
	// example: Freeboxes appear only in the Free network).
	SingleAS bool
	Services []ServiceTemplate
}

func fleet(key features.Key, base string) FeatureTemplate {
	return FeatureTemplate{Key: key, Scope: ScopeFleet, Base: base}
}
func perHost(key features.Key, base string) FeatureTemplate {
	return FeatureTemplate{Key: key, Scope: ScopePerHost, Base: base}
}
func perAS(key features.Key, base string) FeatureTemplate {
	return FeatureTemplate{Key: key, Scope: ScopePerAS, Base: base}
}
func variant(key features.Key, base string) FeatureTemplate {
	return FeatureTemplate{Key: key, Scope: ScopeVariant, Base: base}
}

// httpFeats returns the typical HTTP feature bundle for a fleet-branded
// device page.
func httpFeats(brand string) []FeatureTemplate {
	return []FeatureTemplate{
		fleet(features.KeyHTTPServer, brand+" httpd"),
		fleet(features.KeyHTTPTitle, brand+" admin"),
		variant(features.KeyHTTPBodyHash, brand+"-body"),
		variant(features.KeyHTTPHeader, brand+"-hdr"),
	}
}

// tlsFeats returns the typical TLS feature bundle: per-host certificate
// hash and subject, per-AS organization.
func tlsFeats(brand string) []FeatureTemplate {
	return []FeatureTemplate{
		perHost(features.KeyTLSCertHash, brand+"-cert"),
		perAS(features.KeyTLSOrg, brand+"-org"),
		perHost(features.KeyTLSSubject, brand+"-subj"),
	}
}

// sshFeats returns the typical SSH bundle: fleet banner, per-host key.
func sshFeats(banner string) []FeatureTemplate {
	return []FeatureTemplate{
		fleet(features.KeySSHBanner, banner),
		perHost(features.KeySSHHostKey, "hostkey"),
	}
}

// BaseProfiles returns the hand-written major device fleets. Together with
// the generated vendor models (VendorModelProfiles) they define the default
// universe population.
func BaseProfiles() []Profile {
	return []Profile{
		{
			// The paper's most common IoT device: a home router whose
			// manual says HTTPS is served on a random TCP port.
			Name: "fritzbox", Weight: 9, ASTypes: []ASType{ASResidential}, Concentration: 0.35,
			Services: []ServiceTemplate{
				{Ports: []uint16{80}, Prob: 1, Proto: features.ProtocolHTTP, Feats: httpFeats("FRITZ!Box")},
				{Ports: []uint16{443}, Prob: 0.85, Proto: features.ProtocolTLS, Feats: tlsFeats("fritz")},
				{Ports: []uint16{7547}, Prob: 0.9, Proto: features.ProtocolCWMP, Feats: []FeatureTemplate{
					fleet(features.KeyCWMPHeader, "fritz-cwmp"),
					fleet(features.KeyCWMPBodyHash, "fritz-cwmp-body"),
				}},
				// Security feature: remote HTTPS on a random port.
				{RandomPort: true, RandomPortMin: 20000, Prob: 0.25, Proto: features.ProtocolTLS,
					Forwarded: true, Feats: tlsFeats("fritz-rnd")},
			},
		},
		{
			Name: "generic-cpe", Weight: 10, ASTypes: []ASType{ASResidential, ASMobile}, Concentration: 0.5,
			Services: []ServiceTemplate{
				{Ports: []uint16{7547}, Prob: 1, Proto: features.ProtocolCWMP, Feats: []FeatureTemplate{
					variant(features.KeyCWMPHeader, "cpe-cwmp"),
					variant(features.KeyCWMPBodyHash, "cpe-cwmp-body"),
				}},
				{Ports: []uint16{80}, Prob: 0.55, Proto: features.ProtocolHTTP, Feats: httpFeats("cpe-web")},
				{Ports: []uint16{23}, Prob: 0.2, Proto: features.ProtocolTelnet, Feats: []FeatureTemplate{
					variant(features.KeyTelnetBanner, "cpe-telnet"),
				}},
				// Forwarded internal service on a random port.
				{RandomPort: true, RandomPortMin: 1024, Prob: 0.18, Proto: features.ProtocolHTTP,
					Forwarded: true, Feats: httpFeats("fwd-web")},
			},
		},
		{
			Name: "mikrotik", Weight: 4, ASTypes: []ASType{ASResidential, ASEnterprise}, Concentration: 0.3,
			Services: []ServiceTemplate{
				{Ports: []uint16{8291}, Prob: 1, Proto: features.ProtocolUnknown},
				{Ports: []uint16{80}, Prob: 0.9, Proto: features.ProtocolHTTP, Feats: httpFeats("MikroTik")},
				{Ports: []uint16{22}, Prob: 0.7, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-ROSSSH")},
				{Ports: []uint16{21}, Prob: 0.35, Proto: features.ProtocolFTP, Feats: []FeatureTemplate{
					fleet(features.KeyFTPBanner, "220 MikroTik FTP server ready"),
				}},
			},
		},
		{
			// The Distributel-style telnet/HTTP pairing of §6.6: a
			// fleet whose telnet banner on 23 predicts HTTP on 8082.
			Name: "isp-modem", Weight: 5, ASTypes: []ASType{ASResidential}, Concentration: 0.15,
			Services: []ServiceTemplate{
				{Ports: []uint16{23}, Prob: 1, Proto: features.ProtocolTelnet, Feats: []FeatureTemplate{
					fleet(features.KeyTelnetBanner, "Telnet service is disabled or expired"),
				}},
				{Ports: []uint16{8082}, Prob: 0.95, Proto: features.ProtocolHTTP, Feats: httpFeats("isp-modem")},
			},
		},
		{
			// The Bizland-style IMAP/SSH pairing of §6.6: IMAP on 143
			// predicting SSH on 2222.
			Name: "shared-hosting", Weight: 3, ASTypes: []ASType{ASHosting}, Concentration: 0.12,
			Services: []ServiceTemplate{
				{Ports: []uint16{143}, Prob: 1, Proto: features.ProtocolIMAP, Feats: []FeatureTemplate{
					fleet(features.KeyIMAPBanner, "* OK IMAP ready - use TLS"),
				}},
				{Ports: []uint16{2222}, Prob: 0.97, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_7.4")},
				{Ports: []uint16{80}, Prob: 0.9, Proto: features.ProtocolHTTP, Feats: httpFeats("shared-host")},
				{Ports: []uint16{443}, Prob: 0.85, Proto: features.ProtocolTLS, Feats: tlsFeats("shared-host")},
			},
		},
		{
			Name: "web-server", Weight: 12, ASTypes: []ASType{ASHosting, ASEnterprise, ASAcademic}, Concentration: 0.6,
			Services: []ServiceTemplate{
				{Ports: []uint16{80}, Prob: 1, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
					variant(features.KeyHTTPServer, "nginx"),
					perHost(features.KeyHTTPTitle, "site"),
					perHost(features.KeyHTTPBodyHash, "body"),
					variant(features.KeyHTTPHeader, "std-hdr"),
				}},
				{Ports: []uint16{443}, Prob: 0.9, Proto: features.ProtocolTLS, Feats: tlsFeats("web")},
				{Ports: []uint16{22}, Prob: 0.75, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_8.2")},
			},
		},
		{
			Name: "web-server-alt", Weight: 4, ASTypes: []ASType{ASHosting}, Concentration: 0.4,
			Services: []ServiceTemplate{
				{Ports: []uint16{8080}, Prob: 1, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
					variant(features.KeyHTTPServer, "Apache-Tomcat"),
					perHost(features.KeyHTTPBodyHash, "tomcat-body"),
					fleet(features.KeyHTTPHeader, "tomcat-hdr"),
				}},
				{Ports: []uint16{8443}, Prob: 0.7, Proto: features.ProtocolTLS, Feats: tlsFeats("alt-web")},
				{Ports: []uint16{22}, Prob: 0.8, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_8.9")},
				{Ports: []uint16{8888}, Prob: 0.35, Proto: features.ProtocolHTTP, Feats: httpFeats("alt-admin")},
			},
		},
		{
			Name: "mail-server", Weight: 4, ASTypes: []ASType{ASHosting, ASEnterprise}, Concentration: 0.5,
			Services: []ServiceTemplate{
				{Ports: []uint16{25}, Prob: 1, Proto: features.ProtocolSMTP, Feats: []FeatureTemplate{
					perAS(features.KeySMTPBanner, "220 mail ESMTP Postfix"),
				}},
				{Ports: []uint16{587}, Prob: 0.85, Proto: features.ProtocolSMTP, Feats: []FeatureTemplate{
					perAS(features.KeySMTPBanner, "220 submission ESMTP"),
				}},
				{Ports: []uint16{465}, Prob: 0.7, Proto: features.ProtocolTLS, Feats: tlsFeats("mail")},
				{Ports: []uint16{110}, Prob: 0.6, Proto: features.ProtocolPOP3, Feats: []FeatureTemplate{
					variant(features.KeyPOP3Banner, "+OK POP3 ready"),
				}},
				{Ports: []uint16{143}, Prob: 0.65, Proto: features.ProtocolIMAP, Feats: []FeatureTemplate{
					variant(features.KeyIMAPBanner, "* OK IMAP4 ready"),
				}},
				{Ports: []uint16{993}, Prob: 0.6, Proto: features.ProtocolTLS, Feats: tlsFeats("imaps")},
				{Ports: []uint16{995}, Prob: 0.5, Proto: features.ProtocolTLS, Feats: tlsFeats("pop3s")},
				{Ports: []uint16{22}, Prob: 0.6, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_8.4")},
			},
		},
		{
			Name: "db-server", Weight: 3, ASTypes: []ASType{ASHosting, ASEnterprise}, Concentration: 0.45,
			Services: []ServiceTemplate{
				{Ports: []uint16{3306}, Prob: 0.8, Proto: features.ProtocolMySQL, Feats: []FeatureTemplate{
					variant(features.KeyMySQLVersion, "8.0"),
				}},
				{Ports: []uint16{5432}, Prob: 0.45, Proto: features.ProtocolUnknown},
				{Ports: []uint16{11211}, Prob: 0.2, Proto: features.ProtocolMemcached, Feats: []FeatureTemplate{
					variant(features.KeyMemcachedVersion, "1.6"),
				}},
				{Ports: []uint16{22}, Prob: 0.9, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_8.2")},
			},
		},
		{
			Name: "windows-server", Weight: 3, ASTypes: []ASType{ASEnterprise, ASHosting}, Concentration: 0.5,
			Services: []ServiceTemplate{
				{Ports: []uint16{445}, Prob: 1, Proto: features.ProtocolUnknown},
				{Ports: []uint16{3389}, Prob: 0.75, Proto: features.ProtocolUnknown},
				{Ports: []uint16{1433}, Prob: 0.35, Proto: features.ProtocolMSSQL, Feats: []FeatureTemplate{
					variant(features.KeyMSSQLVersion, "15.0"),
				}},
				{Ports: []uint16{80}, Prob: 0.5, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
					fleet(features.KeyHTTPServer, "Microsoft-IIS/10.0"),
					perHost(features.KeyHTTPBodyHash, "iis-body"),
				}},
			},
		},
		{
			// The Mirai-style fleet motivating the intro: telnet on the
			// assigned and the off-by-one-decade port.
			Name: "telnet-iot", Weight: 6, ASTypes: []ASType{ASResidential, ASMobile}, Concentration: 0.2,
			Services: []ServiceTemplate{
				{Ports: []uint16{23, 2323}, PickOne: true, Prob: 1, Proto: features.ProtocolTelnet,
					Feats: []FeatureTemplate{variant(features.KeyTelnetBanner, "BusyBox login")}},
				{Ports: []uint16{80}, Prob: 0.4, Proto: features.ProtocolHTTP, Feats: httpFeats("iot-goahead")},
			},
		},
		{
			Name: "camera-dvr", Weight: 5, ASTypes: []ASType{ASResidential, ASEnterprise}, Concentration: 0.25,
			Services: []ServiceTemplate{
				{Ports: []uint16{80}, Prob: 0.9, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
					fleet(features.KeyHTTPServer, "DVRDVS-Webs"),
					fleet(features.KeyHTTPTitle, "NETSurveillance WEB"),
					variant(features.KeyHTTPBodyHash, "dvr-body"),
				}},
				{Ports: []uint16{554}, Prob: 0.85, Proto: features.ProtocolUnknown},
				{Ports: []uint16{37777}, Prob: 0.8, Proto: features.ProtocolUnknown},
				{Ports: []uint16{34567}, Prob: 0.3, Proto: features.ProtocolUnknown},
			},
		},
		{
			Name: "vnc-host", Weight: 1.5, ASTypes: []ASType{ASEnterprise, ASAcademic}, Concentration: 0.6,
			Services: []ServiceTemplate{
				{Ports: []uint16{5900}, Prob: 1, Proto: features.ProtocolVNC, Feats: []FeatureTemplate{
					perHost(features.KeyVNCDesktopName, "desktop"),
				}},
				{Ports: []uint16{22}, Prob: 0.5, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_7.9")},
				{Ports: []uint16{5901}, Prob: 0.25, Proto: features.ProtocolVNC, Feats: []FeatureTemplate{
					perHost(features.KeyVNCDesktopName, "desktop1"),
				}},
			},
		},
		{
			Name: "ipmi-bmc", Weight: 1.2, ASTypes: []ASType{ASHosting, ASEnterprise}, Concentration: 0.3,
			Services: []ServiceTemplate{
				{Ports: []uint16{623}, Prob: 1, Proto: features.ProtocolIPMI, Feats: []FeatureTemplate{
					variant(features.KeyIPMIBanner, "IPMI-2.0"),
				}},
				{Ports: []uint16{80}, Prob: 0.8, Proto: features.ProtocolHTTP, Feats: httpFeats("iDRAC")},
				{Ports: []uint16{443}, Prob: 0.75, Proto: features.ProtocolTLS, Feats: tlsFeats("bmc")},
			},
		},
		{
			Name: "pptp-vpn", Weight: 1.5, ASTypes: []ASType{ASEnterprise, ASResidential}, Concentration: 0.4,
			Services: []ServiceTemplate{
				{Ports: []uint16{1723}, Prob: 1, Proto: features.ProtocolPPTP, Feats: []FeatureTemplate{
					variant(features.KeyPPTPVendor, "linux-pptpd"),
				}},
				{Ports: []uint16{443}, Prob: 0.5, Proto: features.ProtocolTLS, Feats: tlsFeats("vpn")},
			},
		},
		{
			// Freebox: the paper's single-network fleet; network feature
			// is maximally predictive here.
			Name: "freebox", Weight: 4, ASTypes: []ASType{ASResidential}, SingleAS: true, Concentration: 1,
			Services: []ServiceTemplate{
				{Ports: []uint16{80}, Prob: 1, Proto: features.ProtocolHTTP, Feats: httpFeats("Freebox")},
				{Ports: []uint16{443}, Prob: 0.8, Proto: features.ProtocolTLS, Feats: tlsFeats("freebox")},
				{Ports: []uint16{554}, Prob: 0.6, Proto: features.ProtocolUnknown},
			},
		},
		{
			// Android TV: spread across every network; the paper's
			// example of a fleet where the network feature is weak.
			Name: "android-tv", Weight: 2.5, ASTypes: []ASType{ASResidential, ASMobile, ASEnterprise, ASAcademic}, Concentration: 1,
			Services: []ServiceTemplate{
				{Ports: []uint16{5555}, Prob: 1, Proto: features.ProtocolUnknown},
				{Ports: []uint16{8008}, Prob: 0.8, Proto: features.ProtocolHTTP, Feats: httpFeats("android-tv")},
				{Ports: []uint16{8443}, Prob: 0.4, Proto: features.ProtocolTLS, Feats: tlsFeats("atv")},
			},
		},
		{
			Name: "ssh-only", Weight: 3, ASTypes: []ASType{ASHosting, ASAcademic}, Concentration: 0.8,
			Services: []ServiceTemplate{
				{Ports: []uint16{22}, Prob: 1, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_8.2")},
			},
		},
		{
			Name: "http-only", Weight: 4, ASTypes: []ASType{ASHosting, ASEnterprise, ASMobile}, Concentration: 0.9,
			Services: []ServiceTemplate{
				{Ports: []uint16{80}, Prob: 1, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
					variant(features.KeyHTTPServer, "nginx"),
					perHost(features.KeyHTTPBodyHash, "body"),
				}},
			},
		},
		{
			// NAT gateways forwarding a single internal server on a
			// random external port, exposing nothing else. These are
			// the §7 fundamental limit: no feature on the host can
			// anchor a prediction, so no intelligent scanner finds them
			// cheaper than exhaustive probing.
			Name: "nat-hidden", Weight: 3.5, ASTypes: []ASType{ASResidential, ASMobile}, Concentration: 0.6,
			Services: []ServiceTemplate{
				{RandomPort: true, RandomPortMin: 1024, Prob: 1, Proto: features.ProtocolHTTP,
					Forwarded: true, Feats: httpFeats("fwd-hidden")},
			},
		},
		{
			// A rare many-service host class: triggers the Appendix B
			// pseudo filter's ~1% false positives (real hosts with >10
			// services).
			Name: "kitchen-sink", Weight: 0.08, ASTypes: []ASType{ASAcademic, ASEnterprise}, Concentration: 0.9,
			Services: []ServiceTemplate{
				{Ports: []uint16{21}, Prob: 1, Proto: features.ProtocolFTP, Feats: []FeatureTemplate{variant(features.KeyFTPBanner, "220 ProFTPD")}},
				{Ports: []uint16{22}, Prob: 1, Proto: features.ProtocolSSH, Feats: sshFeats("SSH-2.0-OpenSSH_7.4")},
				{Ports: []uint16{25}, Prob: 1, Proto: features.ProtocolSMTP, Feats: []FeatureTemplate{variant(features.KeySMTPBanner, "220 ESMTP Sendmail")}},
				{Ports: []uint16{80}, Prob: 1, Proto: features.ProtocolHTTP, Feats: httpFeats("campus")},
				{Ports: []uint16{110}, Prob: 1, Proto: features.ProtocolPOP3, Feats: []FeatureTemplate{variant(features.KeyPOP3Banner, "+OK dovecot")}},
				{Ports: []uint16{143}, Prob: 1, Proto: features.ProtocolIMAP, Feats: []FeatureTemplate{variant(features.KeyIMAPBanner, "* OK dovecot")}},
				{Ports: []uint16{443}, Prob: 1, Proto: features.ProtocolTLS, Feats: tlsFeats("campus")},
				{Ports: []uint16{587}, Prob: 1, Proto: features.ProtocolSMTP, Feats: []FeatureTemplate{variant(features.KeySMTPBanner, "220 submission ESMTP")}},
				{Ports: []uint16{993}, Prob: 1, Proto: features.ProtocolTLS, Feats: tlsFeats("campus-imaps")},
				{Ports: []uint16{3306}, Prob: 1, Proto: features.ProtocolMySQL, Feats: []FeatureTemplate{variant(features.KeyMySQLVersion, "5.7")}},
				{Ports: []uint16{5900}, Prob: 1, Proto: features.ProtocolVNC, Feats: []FeatureTemplate{perHost(features.KeyVNCDesktopName, "lab")}},
				{Ports: []uint16{8080}, Prob: 1, Proto: features.ProtocolHTTP, Feats: httpFeats("campus-alt")},
			},
		},
	}
}

// commonBasePorts is the pool of popular ports vendor models draw their
// "standard" service from.
var commonBasePorts = []uint16{80, 23, 443, 8080, 22, 21}

// VendorModelProfiles programmatically generates n small IoT/CPE vendor
// fleets. Each model ships 1-2 popular ports plus 1-2 model-specific odd
// ports drawn deterministically from the unassigned range, with
// fleet-scoped banners. Model population follows a power law, producing the
// paper's long tail: thousands of uncommon ports each hosting a small but
// predictable fleet.
func VendorModelProfiles(n int, seed int64) []Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vendor-%03d", i)
		brand := fmt.Sprintf("vnd%03d", i)
		// Power-law weight: rank-(i+2) with exponent ~1.1, scaled so the
		// whole collection is comparable to the major profiles.
		weight := 20.0 / float64(i+2)

		oddPort := func() uint16 { return uint16(1024 + rng.Intn(64512)) }
		svcs := []ServiceTemplate{
			// The model-specific management port: the signature of the fleet.
			{Ports: []uint16{oddPort()}, Prob: 1, Proto: features.ProtocolHTTP, Feats: []FeatureTemplate{
				fleet(features.KeyHTTPServer, brand+" httpd"),
				fleet(features.KeyHTTPTitle, brand+" device"),
				variant(features.KeyHTTPBodyHash, brand+"-body"),
			}},
		}
		// A popular base port with a brand banner.
		base := commonBasePorts[rng.Intn(len(commonBasePorts))]
		switch base {
		case 23:
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{23}, Prob: 0.8, Proto: features.ProtocolTelnet,
				Feats: []FeatureTemplate{fleet(features.KeyTelnetBanner, brand+" login")}})
		case 22:
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{22}, Prob: 0.8, Proto: features.ProtocolSSH,
				Feats: sshFeats("SSH-2.0-" + brand)})
		case 21:
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{21}, Prob: 0.8, Proto: features.ProtocolFTP,
				Feats: []FeatureTemplate{fleet(features.KeyFTPBanner, "220 "+brand+" FTP")}})
		case 443:
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{443}, Prob: 0.8, Proto: features.ProtocolTLS,
				Feats: tlsFeats(brand)})
		default:
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{base}, Prob: 0.8, Proto: features.ProtocolHTTP,
				Feats: httpFeats(brand)})
		}
		// Half the models have a second odd port (e.g., a data channel).
		if rng.Intn(2) == 0 {
			svcs = append(svcs, ServiceTemplate{Ports: []uint16{oddPort()}, Prob: 0.9,
				Proto: features.ProtocolUnknown})
		}
		// A slice of each fleet sits behind NAT with an unpredictable
		// forwarded port: the §7 limitation.
		svcs = append(svcs, ServiceTemplate{RandomPort: true, RandomPortMin: 1024, Prob: 0.12,
			Proto: features.ProtocolHTTP, Forwarded: true, Feats: httpFeats(brand + "-fwd")})

		asTypes := []ASType{ASResidential}
		if rng.Intn(3) == 0 {
			asTypes = append(asTypes, ASEnterprise)
		}
		out = append(out, Profile{
			Name: name, Weight: weight, ASTypes: asTypes,
			Concentration: 0.05 + 0.3*rng.Float64(),
			Services:      svcs,
		})
	}
	return out
}

// DefaultProfiles returns the full default population: the hand-written
// majors plus nVendors generated vendor fleets.
func DefaultProfiles(nVendors int, seed int64) []Profile {
	return append(BaseProfiles(), VendorModelProfiles(nVendors, seed)...)
}
