package netmodel

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"gps/internal/asndb"
)

// Partition restricts universe generation to the addresses owned by a
// subset of an n-way hash split of the address space (asndb.ShardOf).
// A partitioned generation materializes hosts only at owned addresses,
// but every host it does materialize is byte-identical to the same host
// in the full generation — the per-entity sub-seed scheme (see subSeed)
// makes each host a pure function of (Params.Seed, its identity), never
// of which other hosts were generated. This is what lets a shard worker
// hold ~1/N of the universe while scanning exactly what the full-world
// run would answer.
//
// A nil Partition (or Count <= 1) owns everything.
type Partition struct {
	// Count is the total shard count of the split.
	Count int
	// Owned lists the owned shard indexes, each in [0, Count).
	Owned []int
}

// Full reports whether the partition owns the whole address space.
func (p *Partition) Full() bool { return p == nil || p.Count <= 1 }

// Owns reports whether the partition owns ip.
func (p *Partition) Owns(ip asndb.IP) bool {
	if p.Full() {
		return true
	}
	return p.Contains(asndb.ShardOf(ip, p.Count))
}

// Contains reports whether the partition owns shard index s. A full
// partition contains every index.
func (p *Partition) Contains(s int) bool {
	if p.Full() {
		return true
	}
	for _, o := range p.Owned {
		if o == s {
			return true
		}
	}
	return false
}

// Validate reports whether the partition is well-formed: a positive
// shard count, at least one owned shard, every index in range, no
// duplicates. nil validates (it means "own everything").
func (p *Partition) Validate() error {
	if p == nil {
		return nil
	}
	if p.Count < 1 {
		return fmt.Errorf("netmodel: partition count %d; want >= 1", p.Count)
	}
	if p.Count == 1 {
		return nil
	}
	if len(p.Owned) == 0 {
		return fmt.Errorf("netmodel: partition of %d shards owns none", p.Count)
	}
	seen := make(map[int]bool, len(p.Owned))
	for _, o := range p.Owned {
		if o < 0 || o >= p.Count {
			return fmt.Errorf("netmodel: partition owns shard %d, out of range [0, %d)", o, p.Count)
		}
		if seen[o] {
			return fmt.Errorf("netmodel: partition owns shard %d twice", o)
		}
		seen[o] = true
	}
	return nil
}

// clone returns a defensive copy with Owned sorted ascending, or nil
// for a full partition.
func (p *Partition) clone() *Partition {
	if p.Full() {
		return nil
	}
	owned := make([]int, len(p.Owned))
	copy(owned, p.Owned)
	sort.Ints(owned)
	return &Partition{Count: p.Count, Owned: owned}
}

// union merges two partitions of the same split into one owning both
// owned sets. Either side being full makes the union full (nil).
func (p *Partition) union(q *Partition) (*Partition, error) {
	if p.Full() || q.Full() {
		return nil, nil
	}
	if p.Count != q.Count {
		return nil, fmt.Errorf("netmodel: partitions of %d- and %d-way splits cannot merge", p.Count, q.Count)
	}
	seen := make(map[int]bool, len(p.Owned)+len(q.Owned))
	var owned []int
	for _, o := range append(append([]int{}, p.Owned...), q.Owned...) {
		if !seen[o] {
			seen[o] = true
			owned = append(owned, o)
		}
	}
	sort.Ints(owned)
	return &Partition{Count: p.Count, Owned: owned}, nil
}

// subSeed derives an independent 64-bit seed for one generation entity
// from the universe seed, a domain label, and the entity's identity, via
// FNV-64a. Every random decision the generator and churn make draws from
// an rng seeded this way, so generating (or churning) any subset of the
// universe consumes exactly the same draws per entity as the full run —
// the determinism contract behind Partition.
func subSeed(seed int64, domain string, ids ...uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(domain))
	for _, id := range ids {
		binary.LittleEndian.PutUint64(b[:], id)
		h.Write(b[:])
	}
	return h.Sum64()
}

// rng is a small, fast deterministic generator (splitmix64) used for all
// universe generation and churn draws. math/rand's source costs ~5 KB
// and a long warm-up per seeding; per-entity sub-seeding creates one rng
// per host, so seeding must be a single hash.
type rng struct{ s uint64 }

func newRNG(seed int64, domain string, ids ...uint64) *rng {
	return &rng{s: subSeed(seed, domain, ids...)}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n) via 32-bit multiply-shift; the
// bias (~n/2^32) is far below anything the universe statistics resolve.
func (r *rng) Intn(n int) int {
	if n <= 0 {
		panic("netmodel: rng.Intn on non-positive n")
	}
	return int((uint64(uint32(r.next()>>32)) * uint64(n)) >> 32)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudorandomizes element order via Fisher-Yates.
func (r *rng) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
