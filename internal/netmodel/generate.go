package netmodel

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gps/internal/asndb"
	"gps/internal/features"
)

// Params configures universe generation. The zero value is not usable; use
// DefaultParams and override fields as needed.
type Params struct {
	Seed int64
	// NumPrefix16 is the number of /16 blocks in the routable space. The
	// scannable space is NumPrefix16 * 65536 addresses; the paper's
	// "one 100% scan" bandwidth unit equals that many probes.
	NumPrefix16 int
	// NumASes is the number of autonomous systems announcing the space.
	NumASes int
	// HostDensity is the fraction of scannable addresses that respond on
	// at least one port (roughly 4% on the real Internet).
	HostDensity float64
	// NumVendorModels is how many long-tail vendor fleets to generate in
	// addition to the hand-written majors.
	NumVendorModels int
	// Profiles overrides the device population entirely when non-nil.
	Profiles []Profile
	// PseudoHostFraction is the share of hosts serving pseudo-service
	// blocks (Appendix B); MiddleboxFraction is the share acking every
	// port (filtered by LZR).
	PseudoHostFraction float64
	MiddleboxFraction  float64
	// VariantsPerFleet is how many firmware variants each fleet's
	// variant-scoped feature values spread over.
	VariantsPerFleet int
	// Partition restricts generation to the owned subset of an n-way
	// hash split: only owned addresses materialize hosts, but every
	// materialized host is byte-identical to the full run's (the global
	// structure — ASes, prefixes, routes, placement claims — is always
	// computed in full, so a partitioned universe costs ~|owned|/n of
	// the host memory, not of the placement work). nil owns everything.
	Partition *Partition
}

// maxPrefix16 bounds NumPrefix16 far below the ~56K /16 blocks the
// unicast draw pool holds, so prefix allocation always terminates.
const maxPrefix16 = 4096

// validFraction accepts fractions in [0, 1] and rejects NaN.
func validFraction(f float64) bool { return f >= 0 && f <= 1 }

// Validate reports whether the parameters describe a generatable
// universe. Generation panics on invalid parameters (a programming
// error in-process); callers handed untrusted parameters — a worker
// rebuilding a world from a coordinator's spec — use GenerateChecked,
// which turns the same conditions into errors.
func (p Params) Validate() error {
	if p.NumPrefix16 <= 0 || p.NumPrefix16 > maxPrefix16 {
		return fmt.Errorf("netmodel: NumPrefix16 %d out of range [1, %d]", p.NumPrefix16, maxPrefix16)
	}
	if p.NumASes <= 0 {
		return fmt.Errorf("netmodel: NumASes %d; want >= 1", p.NumASes)
	}
	if !validFraction(p.HostDensity) {
		return fmt.Errorf("netmodel: HostDensity %v out of range [0, 1]", p.HostDensity)
	}
	if !validFraction(p.PseudoHostFraction) {
		return fmt.Errorf("netmodel: PseudoHostFraction %v out of range [0, 1]", p.PseudoHostFraction)
	}
	if !validFraction(p.MiddleboxFraction) {
		return fmt.Errorf("netmodel: MiddleboxFraction %v out of range [0, 1]", p.MiddleboxFraction)
	}
	if err := p.Partition.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultParams returns a mid-sized universe suitable for experiments:
// 48 /16 blocks (~3.1M addresses), ~3% host density (~95K hosts).
func DefaultParams(seed int64) Params {
	return Params{
		Seed:               seed,
		NumPrefix16:        48,
		NumASes:            24,
		HostDensity:        0.03,
		NumVendorModels:    120,
		PseudoHostFraction: 0.012,
		MiddleboxFraction:  0.006,
		VariantsPerFleet:   5,
	}
}

// TestParams returns a small universe for fast unit tests: 8 /16 blocks,
// ~0.5M addresses, ~10K hosts.
func TestParams(seed int64) Params {
	p := DefaultParams(seed)
	p.NumPrefix16 = 8
	p.NumASes = 8
	p.HostDensity = 0.02
	p.NumVendorModels = 40
	return p
}

// asTypeWeights is ordered: generation must be deterministic for a given
// seed, so no map iteration is allowed here.
var asTypeWeights = [numASTypes]float64{
	ASResidential: 0.35,
	ASHosting:     0.25,
	ASEnterprise:  0.20,
	ASMobile:      0.10,
	ASAcademic:    0.10,
}

// Generate builds a deterministic universe from the parameters. The same
// Params always produce the same universe, and the same Params restricted
// by a Partition produce exactly the full universe's owned hosts: every
// random decision draws from a sub-seed derived per entity (AS layout,
// /16 pool, host, pseudo host, middlebox), never from a shared stream,
// so skipping an entity changes nothing else. Generate panics on invalid
// Params; GenerateChecked returns the error instead.
func Generate(p Params) *Universe {
	u, err := GenerateChecked(p)
	if err != nil {
		panic(err.Error())
	}
	return u
}

// GenerateChecked is Generate with parameter validation: invalid Params
// (including a malformed Partition) return an error instead of
// panicking. This is the entry point for parameters that crossed a
// trust boundary, e.g. a shard worker rebuilding a universe from a
// coordinator's world spec.
func GenerateChecked(p Params) (*Universe, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.VariantsPerFleet <= 0 {
		p.VariantsPerFleet = 5
	}
	part := p.Partition.clone()
	u := &Universe{
		routes: &asndb.Table{},
		hosts:  make(map[asndb.IP]*Host),
		seed:   p.Seed,
		part:   part,
	}
	g := &generator{p: p, u: u, part: part}
	g.allocateASes()
	g.claims = make([]uint64, (u.SpaceSize()+63)/64)
	profiles := p.Profiles
	if profiles == nil {
		profiles = DefaultProfiles(p.NumVendorModels, p.Seed^0x5eed)
	}
	g.placeHosts(profiles)
	g.injectPseudoHosts()
	g.injectMiddleboxes()
	u.finalize()
	return u, nil
}

type generator struct {
	p    Params
	u    *Universe
	part *Partition
	// claims holds one bit per scannable address (dense AddrAt index):
	// set when some entity — host, pseudo host, middlebox, whether owned
	// or not — placed itself there. Placement runs over the full
	// universe even under a Partition (it is cheap: a few rng draws per
	// entity), so collision outcomes never depend on which subset is
	// materialized; only service population is skipped for unowned
	// addresses.
	claims []uint64
	// placed counts every successful claim. Pseudo-host and middlebox
	// counts scale from it, so they too are subset-independent.
	placed int
	// pools maps each announced /16 to the /20 blocks (0..15) that hold
	// its hosts. Pools are a property of the network, not the device
	// fleet: an ISP assigns all customers into the same DHCP ranges, so
	// the rest of the /16 stays dark. This is what makes small scanning
	// steps precise (§6.3).
	pools map[asndb.IP][]uint16
}

// owns reports whether the configured partition owns ip.
func (g *generator) owns(ip asndb.IP) bool { return g.part.Owns(ip) }

// claim marks ip as occupied; false means someone already lives there.
func (g *generator) claim(ip asndb.IP) bool {
	idx, ok := g.u.IndexOf(ip)
	if !ok {
		return false
	}
	w, bit := idx/64, uint64(1)<<(idx%64)
	if g.claims[w]&bit != 0 {
		return false
	}
	g.claims[w] |= bit
	g.placed++
	return true
}

// poolsFor lazily picks 2-4 dense /20 blocks for a /16, from the
// prefix's own sub-seed.
func (g *generator) poolsFor(addr asndb.IP) []uint16 {
	if g.pools == nil {
		g.pools = make(map[asndb.IP][]uint16)
	}
	if p, ok := g.pools[addr]; ok {
		return p
	}
	rng := newRNG(g.p.Seed, "pools", uint64(addr))
	n := 2 + rng.Intn(3)
	perm := rng.Perm(16)
	p := make([]uint16, n)
	for i := 0; i < n; i++ {
		p[i] = uint16(perm[i])
	}
	g.pools[addr] = p
	return p
}

// allocateASes carves the routable space into ASes of varied sizes and
// registers their prefixes in the routing table. The whole network
// layout draws from one "ases" sub-seed: it is global structure every
// partition needs identically (routing, prefix census, AS types).
func (g *generator) allocateASes() {
	rng := newRNG(g.p.Seed, "ases")
	// Draw distinct /16 network addresses from the unicast range.
	used := make(map[asndb.IP]bool)
	prefixes := make([]asndb.Prefix, 0, g.p.NumPrefix16)
	for len(prefixes) < g.p.NumPrefix16 {
		a := 1 + rng.Intn(223)
		if a == 10 || a == 127 { // skip loopback and RFC1918 /8
			continue
		}
		b := rng.Intn(256)
		addr := asndb.IP(uint32(a)<<24 | uint32(b)<<16)
		if used[addr] {
			continue
		}
		used[addr] = true
		prefixes = append(prefixes, asndb.MustPrefix(addr, 16))
	}

	// Assign AS types by weight, then deal prefixes out: residential
	// ISPs tend to be large (more /16s), hosting providers small.
	types := make([]ASType, 0, g.p.NumASes)
	for t := ASType(0); t < numASTypes; t++ {
		n := int(asTypeWeights[t]*float64(g.p.NumASes) + 0.5)
		for i := 0; i < n && len(types) < g.p.NumASes; i++ {
			types = append(types, t)
		}
	}
	for len(types) < g.p.NumASes {
		types = append(types, ASResidential)
	}
	rng.Shuffle(len(types), func(i, j int) { types[i], types[j] = types[j], types[i] })

	ases := make([]ASInfo, g.p.NumASes)
	for i := range ases {
		ases[i] = ASInfo{
			Num:  asndb.ASN(64512 + i), // private-use ASN range
			Name: fmt.Sprintf("%s-net-%d", types[i], i),
			Type: types[i],
		}
	}
	// Deal each prefix to an AS, favoring residential ASes with a double
	// share so large consumer networks emerge.
	weights := make([]int, len(ases))
	for i, a := range ases {
		weights[i] = 1
		if a.Type == ASResidential {
			weights[i] = 2
		}
	}
	var wsum int
	for _, w := range weights {
		wsum += w
	}
	for _, pfx := range prefixes {
		r := rng.Intn(wsum)
		idx := 0
		for i, w := range weights {
			if r < w {
				idx = i
				break
			}
			r -= w
		}
		ases[idx].Prefixes = append(ases[idx].Prefixes, pfx)
	}
	for i := range ases {
		for _, pfx := range ases[i].Prefixes {
			g.u.routes.Insert(pfx, ases[i].Num)
		}
	}
	g.u.ases = ases
	g.u.prefixes = prefixes
	// Later passes index the claims bitmap through IndexOf and draw
	// free addresses by prefix position, so the canonical sorted order
	// must hold from here on (finalize's re-sort is then a no-op).
	sort.Slice(g.u.prefixes, func(i, j int) bool { return g.u.prefixes[i].Addr < g.u.prefixes[j].Addr })
}

// placeHosts creates the device population profile by profile.
func (g *generator) placeHosts(profiles []Profile) {
	space := float64(g.p.NumPrefix16) * 65536
	totalHosts := int(space * g.p.HostDensity)
	var wsum float64
	for _, pr := range profiles {
		wsum += pr.Weight
	}
	for pi, pr := range profiles {
		n := int(float64(totalHosts) * pr.Weight / wsum)
		if n == 0 {
			n = 1
		}
		g.placeProfile(pi, pr, n)
	}
}

// eligiblePrefixes returns the /16 blocks a profile may occupy.
func (g *generator) eligiblePrefixes(pr Profile, rng *rng) []asndb.Prefix {
	wantType := make(map[ASType]bool, len(pr.ASTypes))
	for _, t := range pr.ASTypes {
		wantType[t] = true
	}
	var candidates []ASInfo
	for _, a := range g.u.ases {
		if wantType[a.Type] && len(a.Prefixes) > 0 {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		// No AS of the requested type exists in a tiny universe; fall
		// back to the whole space.
		return g.u.prefixes
	}
	if pr.SingleAS {
		a := candidates[rng.Intn(len(candidates))]
		return a.Prefixes
	}
	var out []asndb.Prefix
	for _, a := range candidates {
		out = append(out, a.Prefixes...)
	}
	return out
}

// placeProfile places profile pi's n hosts. Profile-level draws (which
// /16s the fleet clusters in) come from the profile's sub-seed; each
// host then draws placement and services from its own (profile, index)
// sub-seed, so a host is identical whether or not its neighbors are
// materialized.
func (g *generator) placeProfile(pi int, pr Profile, n int) {
	prng := newRNG(g.p.Seed, "profile", uint64(pi))
	eligible := g.eligiblePrefixes(pr, prng)
	k := int(float64(len(eligible))*pr.Concentration + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(eligible) {
		k = len(eligible)
	}
	perm := prng.Perm(len(eligible))
	// Within each chosen /16, hosts land only in the network's dense /20
	// pools (DHCP ranges, rack allocations); the rest of the block stays
	// dark. See poolsFor.
	chosen := make([]asndb.Prefix, k)
	for i := 0; i < k; i++ {
		chosen[i] = eligible[perm[i]]
	}
	for i := 0; i < n; i++ {
		hrng := newRNG(g.p.Seed, "host", uint64(pi), uint64(i))
		pfx := chosen[hrng.Intn(k)]
		pools := g.poolsFor(pfx.Addr)
		pool := pools[hrng.Intn(len(pools))]
		var ip asndb.IP
		placed := false
		for try := 0; try < 6; try++ {
			off := uint32(pool)<<12 | uint32(hrng.Intn(4096))
			ip = pfx.Addr + asndb.IP(off)
			// The claim decides occupancy at placement time, service
			// roll or not: whether a host's services all roll absent is
			// unknowable for unowned hosts, so an all-absent host still
			// occupies its address (it just never enters the host map).
			if g.claim(ip) {
				placed = true
				break
			}
		}
		if !placed || !g.owns(ip) {
			continue
		}
		asn, _ := g.u.routes.Lookup(ip)
		h := NewHost(ip, asn, pr.Name)
		g.populateHost(h, pr, hrng)
		if len(h.services) == 0 {
			continue // all probabilistic services rolled absent
		}
		g.u.insertHost(h)
	}
}

// populateHost instantiates a profile's service templates on one host,
// drawing from the host's own rng stream.
func (g *generator) populateHost(h *Host, pr Profile, rng *rng) {
	// One firmware variant per host: all variant-scoped features on the
	// host share it, as a real firmware image would.
	hostVariant := rng.Intn(g.p.VariantsPerFleet)
	baseTTL := uint8(40 + rng.Intn(25))
	for _, st := range pr.Services {
		if st.Prob < 1 && rng.Float64() >= st.Prob {
			continue
		}
		port := uint16(0)
		switch {
		case st.RandomPort:
			min := int(st.RandomPortMin)
			if min < 1024 {
				min = 1024
			}
			port = uint16(min + rng.Intn(65536-min))
		case st.PickOne:
			port = st.Ports[rng.Intn(len(st.Ports))]
		default:
			// Non-PickOne templates with several ports open all of
			// them; handled by looping below.
		}
		ports := []uint16{port}
		if !st.RandomPort && !st.PickOne {
			ports = st.Ports
		}
		for _, pt := range ports {
			svc := &Service{
				Port:      pt,
				Proto:     st.Proto,
				TTL:       baseTTL,
				Forwarded: st.Forwarded,
			}
			if st.Forwarded {
				// A forwarded service traverses the NAT hop.
				svc.TTL = baseTTL - 1 - uint8(rng.Intn(3))
			}
			if len(st.Feats) > 0 {
				svc.Feats = make(features.Set, len(st.Feats)+1)
				for _, ft := range st.Feats {
					svc.Feats[ft.Key] = g.featureValue(ft, h, hostVariant)
				}
			}
			if svc.Proto != features.ProtocolUnknown {
				if svc.Feats == nil {
					svc.Feats = make(features.Set, 1)
				}
				svc.Feats[features.KeyProtocol] = svc.Proto.String()
			}
			h.AddService(svc)
		}
	}
}

// featureValue renders a template into a concrete string per its scope.
func (g *generator) featureValue(ft FeatureTemplate, h *Host, hostVariant int) string {
	switch ft.Scope {
	case ScopeFleet:
		return ft.Base
	case ScopePerAS:
		return fmt.Sprintf("%s@%s", ft.Base, h.ASN)
	case ScopePerHost:
		return fmt.Sprintf("%s#%08x", ft.Base, hostHash(h.IP, ft.Key, g.p.Seed))
	case ScopeVariant:
		return fmt.Sprintf("%s/v%d", ft.Base, hostVariant)
	}
	return ft.Base
}

// hostHash derives a stable per-host token for ScopePerHost values.
func hostHash(ip asndb.IP, key features.Key, seed int64) uint32 {
	f := fnv.New32a()
	var buf [13]byte
	buf[0] = byte(key)
	buf[1], buf[2], buf[3], buf[4] = byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)
	for i := 0; i < 8; i++ {
		buf[5+i] = byte(seed >> (8 * i))
	}
	f.Write(buf[:])
	return f.Sum32()
}

// injectPseudoHosts places hosts that serve identical pseudo services on
// 1,000+ contiguous ports (Appendix B). The count scales from the
// placement census (not the materialized host list), so it is identical
// under any partition.
func (g *generator) injectPseudoHosts() {
	n := int(float64(g.placed) * g.p.PseudoHostFraction)
	for i := 0; i < n; i++ {
		rng := newRNG(g.p.Seed, "pseudo", uint64(i))
		ip := g.claimFreeIP(rng)
		if ip == 0 || !g.owns(ip) {
			continue
		}
		asn, _ := g.u.routes.Lookup(ip)
		h := NewHost(ip, asn, "pseudo-block")
		lo := uint16(1000 + rng.Intn(50000))
		span := uint16(1000 + rng.Intn(2000))
		hi := lo + span
		if hi < lo { // wrapped
			hi = 65535
		}
		tmpl := &Service{
			Proto: features.ProtocolHTTP,
			Feats: features.Set{
				features.KeyProtocol:     features.ProtocolHTTP.String(),
				features.KeyHTTPServer:   "pseudo-frontend",
				features.KeyHTTPBodyHash: "no-service-here",
			},
			TTL:    uint8(40 + rng.Intn(25)),
			Pseudo: true,
		}
		h.SetPseudoBlock(lo, hi, tmpl)
		// Pseudo hosts usually also run the real frontend on 80/443.
		h.AddService(&Service{Port: 80, Proto: features.ProtocolHTTP, TTL: tmpl.TTL,
			Feats: features.Set{
				features.KeyProtocol:     features.ProtocolHTTP.String(),
				features.KeyHTTPServer:   "pseudo-frontend",
				features.KeyHTTPBodyHash: "frontend-body",
			}})
		g.u.insertHost(h)
	}
}

// injectMiddleboxes places hosts that complete a SYN handshake on every
// port but never speak a protocol; LZR's fingerprinting discards them.
func (g *generator) injectMiddleboxes() {
	n := int(float64(g.placed) * g.p.MiddleboxFraction)
	for i := 0; i < n; i++ {
		rng := newRNG(g.p.Seed, "middlebox", uint64(i))
		ip := g.claimFreeIP(rng)
		if ip == 0 || !g.owns(ip) {
			continue
		}
		asn, _ := g.u.routes.Lookup(ip)
		h := NewHost(ip, asn, "middlebox")
		h.Middlebox = true
		g.u.insertHost(h)
	}
}

// claimFreeIP draws candidate addresses from rng until one claims, up to
// 16 tries; 0 means every try was already occupied.
func (g *generator) claimFreeIP(rng *rng) asndb.IP {
	for try := 0; try < 16; try++ {
		pfx := g.u.prefixes[rng.Intn(len(g.u.prefixes))]
		ip := pfx.Addr + asndb.IP(rng.Intn(65536))
		if g.claim(ip) {
			return ip
		}
	}
	return 0
}
