// Package netmodel implements a deterministic synthetic IPv4 Internet used
// as the ground-truth substrate for GPS experiments. The real paper scans
// the live Internet with ZMap/LZR/ZGrab and evaluates against Censys; this
// package stands in for all of that data with a generator that reproduces
// the statistical structure GPS's predictions depend on (§4 of the paper):
//
//   - Port usage is correlated on hosts: device fleets are "manufactured"
//     with a fixed port set, so the presence of one port predicts others.
//   - Application-layer banners identify the manufacturer/OS/purpose of a
//     host and therefore its remaining ports.
//   - Services cluster in networks: fleets concentrate in a small number of
//     ASNs and /16 subnetworks.
//   - A long tail of services lives on unassigned ports, both from vendor
//     model-specific ports and from unpredictable port forwarding.
//   - Middleboxes and "pseudo services" pollute naive scans (Appendix B).
package netmodel

import (
	"fmt"

	"gps/internal/asndb"
	"gps/internal/features"
)

// Service is one (port, protocol) endpoint on a host, with its
// application-layer feature values (banners, certificates, and so on).
type Service struct {
	Port  uint16
	Proto features.Protocol
	// Feats holds the application-layer features revealed by a full L7
	// handshake (ZGrab's job). Network-layer features are derived from
	// the host's IP, not stored here.
	Feats features.Set
	// TTL is the IP time-to-live observed on responses. Port-forwarded
	// services traverse an extra hop, so their TTL differs from the
	// host's other services; the paper uses this to estimate that 55% of
	// services on uncommon ports are forwarded (§7).
	TTL uint8
	// Forwarded marks services that a router forwards to an internal
	// device on an effectively random external port. These are the
	// fundamentally unpredictable services of §7.
	Forwarded bool
	// Pseudo marks a pseudo-service: a response that completes a
	// handshake but serves no real content (Appendix B). Pseudo services
	// must be filtered from seed sets or GPS learns junk patterns.
	Pseudo bool
}

// Key identifies a service globally as an (IP, port) pair, the unit of
// discovery throughout the paper ("#(IP, p)" in Equations 1-2).
type Key struct {
	IP   asndb.IP
	Port uint16
}

// String renders "ip:port".
func (k Key) String() string { return fmt.Sprintf("%s:%d", k.IP, k.Port) }

// Host is one responsive IPv4 address and everything it serves.
type Host struct {
	IP       asndb.IP
	ASN      asndb.ASN
	Profile  string // generator profile name, for debugging and analysis
	services map[uint16]*Service
	ports    []uint16 // sorted port list, built on Finalize

	// pseudoLo/pseudoHi bound a contiguous block of pseudo-service
	// ports (inclusive); pseudoTmpl is the shared response. Hosts
	// serving pseudo services respond identically on every port in the
	// block, which is how Censys-style "pseudo service" hosts behave.
	pseudoLo, pseudoHi uint16
	pseudoTmpl         *Service

	// Middlebox marks hosts (e.g., security appliances) that complete a
	// SYN handshake on every port but never speak a real protocol. LZR
	// filters these before ZGrab runs.
	Middlebox bool
}

// NewHost creates an empty host.
func NewHost(ip asndb.IP, asn asndb.ASN, profile string) *Host {
	return &Host{IP: ip, ASN: asn, Profile: profile, services: make(map[uint16]*Service)}
}

// AddService attaches a service; a second service on the same port
// overwrites the first.
func (h *Host) AddService(s *Service) {
	h.services[s.Port] = s
	h.ports = nil
}

// RemoveService drops the service on the given port, if any.
func (h *Host) RemoveService(port uint16) {
	delete(h.services, port)
	h.ports = nil
}

// SetPseudoBlock makes the host serve the same pseudo service on every
// port in [lo, hi].
func (h *Host) SetPseudoBlock(lo, hi uint16, tmpl *Service) {
	h.pseudoLo, h.pseudoHi, h.pseudoTmpl = lo, hi, tmpl
}

// PseudoBlock returns the pseudo block bounds and whether one is set.
func (h *Host) PseudoBlock() (lo, hi uint16, ok bool) {
	return h.pseudoLo, h.pseudoHi, h.pseudoTmpl != nil
}

// ServiceAt returns the service on a port. Pseudo blocks synthesize a
// service on demand so that a block of 1,000+ ports costs one template.
func (h *Host) ServiceAt(port uint16) (*Service, bool) {
	if s, ok := h.services[port]; ok {
		return s, true
	}
	if h.pseudoTmpl != nil && port >= h.pseudoLo && port <= h.pseudoHi {
		s := *h.pseudoTmpl
		s.Port = port
		return &s, true
	}
	return nil, false
}

// Responsive reports whether a SYN to the port would be answered.
// Middleboxes acknowledge everything.
func (h *Host) Responsive(port uint16) bool {
	if h.Middlebox {
		return true
	}
	_, ok := h.ServiceAt(port)
	return ok
}

// Ports returns the host's real (non-pseudo-block) service ports in
// ascending order. The slice is cached; callers must not modify it.
func (h *Host) Ports() []uint16 {
	if h.ports == nil {
		h.ports = make([]uint16, 0, len(h.services))
		for p := range h.services {
			h.ports = append(h.ports, p)
		}
		sortPorts(h.ports)
	}
	return h.ports
}

// NumServices counts the host's services including any pseudo block.
func (h *Host) NumServices() int {
	n := len(h.services)
	if h.pseudoTmpl != nil {
		n += int(h.pseudoHi) - int(h.pseudoLo) + 1
	}
	return n
}

// Services returns the host's explicit services keyed by port. Callers
// must not modify the map.
func (h *Host) Services() map[uint16]*Service { return h.services }

func sortPorts(p []uint16) {
	// Insertion sort: hosts have a handful of ports, so this beats the
	// allocation and indirection of sort.Slice on the hot path.
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j-1] > p[j]; j-- {
			p[j-1], p[j] = p[j], p[j-1]
		}
	}
}
