package netmodel

import (
	"math"
	"testing"
)

// TestChurnDeterministic: the same universe churned twice with the same
// parameters must produce identical universes. This is what makes the
// continuous subsystem's checkpoint/resume reproducible — and it is easy
// to lose by consuming rng draws in map-iteration order.
func TestChurnDeterministic(t *testing.T) {
	u := testUniverse(t)
	p := DefaultChurn(77)
	a, b := Churn(u, p), Churn(u, p)
	if a.NumHosts() != b.NumHosts() || a.NumServices() != b.NumServices() {
		t.Fatalf("churn runs differ: %d/%d hosts, %d/%d services",
			a.NumHosts(), b.NumHosts(), a.NumServices(), b.NumServices())
	}
	for _, ha := range a.Hosts() {
		hb, ok := b.HostAt(ha.IP)
		if !ok {
			t.Fatalf("host %v only survived in one run", ha.IP)
		}
		if len(ha.Services()) != len(hb.Services()) {
			t.Fatalf("host %v: %d vs %d services", ha.IP, len(ha.Services()), len(hb.Services()))
		}
		for port := range ha.Services() {
			if _, ok := hb.ServiceAt(port); !ok {
				t.Fatalf("service %v:%d only survived in one run", ha.IP, port)
			}
		}
	}
	// A different seed must churn differently.
	c := Churn(u, DefaultChurn(78))
	if c.NumServices() == a.NumServices() && c.NumHosts() == a.NumHosts() {
		t.Error("different churn seeds produced identical universes (suspicious)")
	}
}

// TestChurnLossRates checks the measured loss against the parameters.
// A service disappears when its host dies (HostLoss) or its own coin
// fires (ServiceLoss / ForwardedLoss for forwarded services), so the
// expected loss is 1-(1-HostLoss)(1-perServiceLoss).
func TestChurnLossRates(t *testing.T) {
	u := testUniverse(t)
	p := DefaultChurn(123)
	after := Churn(u, p)

	var normTotal, normLost, fwdTotal, fwdLost float64
	for _, h := range u.Hosts() {
		for port, svc := range h.Services() {
			_, alive := after.ServiceAt(h.IP, port)
			if svc.Forwarded {
				fwdTotal++
				if !alive {
					fwdLost++
				}
			} else {
				normTotal++
				if !alive {
					normLost++
				}
			}
		}
	}
	if normTotal < 1000 || fwdTotal < 200 {
		t.Fatalf("universe too small to measure rates (%d normal, %d forwarded services)",
			int(normTotal), int(fwdTotal))
	}

	wantNorm := 1 - (1-p.HostLoss)*(1-p.ServiceLoss)
	wantFwd := 1 - (1-p.HostLoss)*(1-p.ForwardedLoss)
	// 5-sigma binomial tolerance (floored at 1%) keeps the test tight
	// but not flaky.
	tol := func(want, n float64) float64 {
		return math.Max(0.01, 5*math.Sqrt(want*(1-want)/n))
	}
	if got := normLost / normTotal; math.Abs(got-wantNorm) > tol(wantNorm, normTotal) {
		t.Errorf("normal-service loss %.4f; want %.4f±%.4f", got, wantNorm, tol(wantNorm, normTotal))
	}
	if got := fwdLost / fwdTotal; math.Abs(got-wantFwd) > tol(wantFwd, fwdTotal) {
		t.Errorf("forwarded-service loss %.4f; want %.4f±%.4f", got, wantFwd, tol(wantFwd, fwdTotal))
	}
	if fwdLost/fwdTotal <= normLost/normTotal {
		t.Error("forwarded services must churn faster than normal ones (§3)")
	}
}

// TestChurnSharesUnchangedHosts: hosts that survive with every service
// intact must be shared (same pointer) between the two universes, per the
// Churn doc comment — copying ~97% of hosts every epoch would make the
// continuous subsystem's per-epoch churn step O(universe) in allocations.
func TestChurnSharesUnchangedHosts(t *testing.T) {
	u := testUniverse(t)
	after := Churn(u, DefaultChurn(9))

	shared, copied := 0, 0
	for _, h := range after.Hosts() {
		orig, ok := u.HostAt(h.IP)
		if !ok {
			t.Fatalf("churn invented host %v", h.IP)
		}
		if h == orig {
			shared++
			continue
		}
		copied++
		// A copied host must have actually lost something.
		if len(h.Services()) >= len(orig.Services()) {
			t.Errorf("host %v copied without losing services (%d -> %d)",
				h.IP, len(orig.Services()), len(h.Services()))
		}
	}
	if shared == 0 {
		t.Error("no surviving host is shared; unchanged hosts should not be copied")
	}
	if copied == 0 {
		t.Error("no host was rewritten; churn seems to have dropped nothing")
	}
	if shared < copied {
		t.Errorf("shared %d < copied %d; most hosts survive churn unchanged", shared, copied)
	}
}
