package netmodel

import (
	"fmt"
	"sort"

	"gps/internal/asndb"
)

// NumPorts is the size of the TCP port space GPS predicts over.
const NumPorts = 65536

// ASInfo describes one synthetic autonomous system.
type ASInfo struct {
	Num      asndb.ASN
	Name     string
	Type     ASType
	Prefixes []asndb.Prefix // the /16 blocks announced by this AS
}

// ASType classifies an AS by the kind of hosts it contains, which drives
// which device fleets concentrate in it.
type ASType uint8

// AS categories used by the generator.
const (
	ASResidential ASType = iota // consumer ISPs: routers, IoT, CPE
	ASHosting                   // datacenters: web, mail, DB servers
	ASEnterprise                // corporate networks: mixed servers
	ASMobile                    // mobile carriers: sparse CGN-style hosts
	ASAcademic                  // universities: mixed, lightly filtered
	numASTypes
)

var asTypeNames = [...]string{"residential", "hosting", "enterprise", "mobile", "academic"}

// String names the AS type.
func (t ASType) String() string {
	if int(t) < len(asTypeNames) {
		return asTypeNames[t]
	}
	return "unknown"
}

// Universe is the synthetic Internet: an allocated slice of IPv4 space, a
// routing table, and a population of hosts. It doubles as the scan target:
// the scanner substrate probes it one (IP, port) at a time.
//
// A Universe is immutable after generation except through Churn, and is
// safe for concurrent reads.
//
// A partitioned universe (generated with Params.Partition) carries the
// full global structure — ASes, routes, prefixes, space size — but holds
// hosts only at owned addresses; every host it holds is byte-identical
// to the full universe's.
type Universe struct {
	ases     []ASInfo
	routes   *asndb.Table
	prefixes []asndb.Prefix // all announced /16s, sorted
	hosts    map[asndb.IP]*Host
	hostList []*Host // sorted by IP
	seed     int64
	part     *Partition // nil = full universe
}

// Seed returns the generator seed that produced this universe.
func (u *Universe) Seed() int64 { return u.seed }

// Partition returns the ownership restriction this universe was
// generated under; nil means the full universe.
func (u *Universe) Partition() *Partition { return u.part }

// ASes returns the autonomous systems of the universe.
func (u *Universe) ASes() []ASInfo { return u.ases }

// Routes returns the routing table for ASN lookups.
func (u *Universe) Routes() *asndb.Table { return u.routes }

// Prefixes returns the announced /16 blocks in ascending order. The
// scannable address space is exactly the union of these blocks.
func (u *Universe) Prefixes() []asndb.Prefix { return u.prefixes }

// SpaceSize returns the number of scannable addresses. One "100% scan" in
// the paper's bandwidth unit is SpaceSize probes (one full pass on one
// port).
func (u *Universe) SpaceSize() uint64 {
	var n uint64
	for _, p := range u.prefixes {
		n += p.Size()
	}
	return n
}

// NumHosts returns the number of responsive hosts.
func (u *Universe) NumHosts() int { return len(u.hostList) }

// HostAt returns the host at an address, if any.
func (u *Universe) HostAt(ip asndb.IP) (*Host, bool) {
	h, ok := u.hosts[ip]
	return h, ok
}

// Hosts returns all hosts sorted by IP. Callers must not modify the slice.
func (u *Universe) Hosts() []*Host { return u.hostList }

// ServiceAt returns the service at (ip, port), if one exists (including
// synthesized pseudo-block services).
func (u *Universe) ServiceAt(ip asndb.IP, port uint16) (*Service, bool) {
	h, ok := u.hosts[ip]
	if !ok {
		return nil, false
	}
	return h.ServiceAt(port)
}

// Responsive reports whether a SYN probe to (ip, port) is acknowledged.
// This is the scanner's view of the world.
func (u *Universe) Responsive(ip asndb.IP, port uint16) bool {
	h, ok := u.hosts[ip]
	return ok && h.Responsive(port)
}

// ResponseTTL returns the TTL a response from (ip, port) would carry;
// forwarded services show a different TTL than the host's other services
// (§7). ok is false when nothing would respond. Middleboxes answer with a
// fixed appliance TTL.
func (u *Universe) ResponseTTL(ip asndb.IP, port uint16) (uint8, bool) {
	h, ok := u.hosts[ip]
	if !ok {
		return 0, false
	}
	if svc, okS := h.ServiceAt(port); okS {
		return svc.TTL, true
	}
	if h.Middlebox {
		return 255, true
	}
	return 0, false
}

// ASNOf returns the ASN announcing ip's prefix.
func (u *Universe) ASNOf(ip asndb.IP) (asndb.ASN, bool) { return u.routes.Lookup(ip) }

// AddrAt maps a dense index in [0, SpaceSize) to the index-th scannable
// address. The scanner uses this with a random permutation of the index
// space to visit every address exactly once in pseudorandom order.
func (u *Universe) AddrAt(i uint64) asndb.IP {
	// Prefixes are all /16s, so each holds 65536 addresses.
	p := u.prefixes[i>>16]
	return p.Addr + asndb.IP(i&0xffff)
}

// IndexOf is the inverse of AddrAt; ok is false when ip is outside the
// announced space.
func (u *Universe) IndexOf(ip asndb.IP) (uint64, bool) {
	want := asndb.SubnetOf(ip, 16)
	i := sort.Search(len(u.prefixes), func(i int) bool { return u.prefixes[i].Addr >= want.Addr })
	if i == len(u.prefixes) || u.prefixes[i].Addr != want.Addr {
		return 0, false
	}
	return uint64(i)<<16 | uint64(ip&0xffff), true
}

// Contains reports whether ip is inside the announced address space.
func (u *Universe) Contains(ip asndb.IP) bool {
	_, ok := u.IndexOf(ip)
	return ok
}

// ResponsiveIn returns every address inside prefix that would acknowledge
// a SYN on port, in ascending order. It is semantically identical to
// probing each address in the prefix but runs in time proportional to the
// hosts present, which lets large prefix scans execute quickly; callers
// must account the full prefix size as probe bandwidth.
func (u *Universe) ResponsiveIn(p asndb.Prefix, port uint16) []asndb.IP {
	lo := sort.Search(len(u.hostList), func(i int) bool { return u.hostList[i].IP >= p.First() })
	var out []asndb.IP
	for i := lo; i < len(u.hostList) && u.hostList[i].IP <= p.Last(); i++ {
		if u.hostList[i].Responsive(port) {
			out = append(out, u.hostList[i].IP)
		}
	}
	return out
}

// AnnouncedWithin intersects a prefix with the announced address space,
// returning the announced /16 blocks (or sub-blocks) it covers. Scanners
// use this so that a large scanning step (e.g., /0) costs the announced
// space rather than all 2^32 addresses — unannounced space never receives
// probes on the real Internet either (ZMap skips bogons and reserved
// blocks).
func (u *Universe) AnnouncedWithin(p asndb.Prefix) []asndb.Prefix {
	if p.Bits >= 16 {
		// p sits inside a single /16: announced iff that /16 is.
		want := asndb.SubnetOf(p.First(), 16)
		for _, pfx := range u.prefixes {
			if pfx.Addr == want.Addr {
				return []asndb.Prefix{p}
			}
		}
		return nil
	}
	var out []asndb.Prefix
	for _, pfx := range u.prefixes {
		if p.Contains(pfx.First()) {
			out = append(out, pfx)
		}
	}
	return out
}

// NumServices counts every service in the universe, including pseudo
// services and forwarded ports.
func (u *Universe) NumServices() int {
	n := 0
	for _, h := range u.hostList {
		n += h.NumServices()
	}
	return n
}

// PortPopulation counts responsive IPs per port across all real (explicit)
// services. It ignores pseudo blocks and middleboxes, matching the
// "real services" filtering of Appendix B.
func (u *Universe) PortPopulation() []int {
	pop := make([]int, NumPorts)
	for _, h := range u.hostList {
		for p := range h.services {
			pop[p]++
		}
	}
	return pop
}

// Merge combines two partitioned universes generated (and churned)
// identically except for disjoint owned-shard sets into one universe
// owning the union: the hosts are pooled, the shared global structure is
// taken from a. Both universes must come from the same Params (same
// seed, same prefix census) and the same churn history — Merge validates
// what it can (seed, prefix census, partition compatibility, host
// disjointness) and trusts the caller for the rest. Inputs are not
// modified; hosts are shared with the inputs.
func Merge(a, b *Universe) (*Universe, error) {
	if a.seed != b.seed {
		return nil, fmt.Errorf("netmodel: merging universes from different seeds (%d vs %d)", a.seed, b.seed)
	}
	if len(a.prefixes) != len(b.prefixes) {
		return nil, fmt.Errorf("netmodel: merging universes with different prefix censuses (%d vs %d /16s)",
			len(a.prefixes), len(b.prefixes))
	}
	for i := range a.prefixes {
		if a.prefixes[i] != b.prefixes[i] {
			return nil, fmt.Errorf("netmodel: merging universes with different prefix censuses (%v vs %v)",
				a.prefixes[i], b.prefixes[i])
		}
	}
	part, err := a.part.union(b.part)
	if err != nil {
		return nil, err
	}
	out := &Universe{
		ases:     a.ases,
		routes:   a.routes,
		prefixes: a.prefixes,
		hosts:    make(map[asndb.IP]*Host, len(a.hosts)+len(b.hosts)),
		seed:     a.seed,
		part:     part,
	}
	for _, h := range a.hostList {
		out.insertHost(h)
	}
	for _, h := range b.hostList {
		if _, dup := out.hosts[h.IP]; dup {
			return nil, fmt.Errorf("netmodel: host %v exists in both universes being merged; partitions must be disjoint", h.IP)
		}
		out.insertHost(h)
	}
	out.finalize()
	return out, nil
}

// insertHost registers a host; used by the generator and churn.
func (u *Universe) insertHost(h *Host) {
	u.hosts[h.IP] = h
	u.hostList = append(u.hostList, h)
}

// finalize sorts internal indexes after generation or churn.
func (u *Universe) finalize() {
	sort.Slice(u.hostList, func(i, j int) bool { return u.hostList[i].IP < u.hostList[j].IP })
	sort.Slice(u.prefixes, func(i, j int) bool { return u.prefixes[i].Addr < u.prefixes[j].Addr })
}
