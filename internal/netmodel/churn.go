package netmodel

import (
	"gps/internal/asndb"
)

// ChurnParams controls how the universe evolves between two observation
// points. The paper (§3) measures that over 10 days, 9% of all services and
// 15% of normalized services disappear — uncommon-port services churn
// faster because DHCP reassignment and NAT reconfiguration move them.
type ChurnParams struct {
	// ServiceLoss is the base probability any service disappears.
	ServiceLoss float64
	// ForwardedLoss is the probability a port-forwarded (random-port)
	// service disappears; these churn fastest.
	ForwardedLoss float64
	// HostLoss is the probability an entire host goes dark (address
	// reassignment).
	HostLoss float64
	Seed     int64
}

// DefaultChurn returns parameters tuned to the paper's 10-day measurement.
func DefaultChurn(seed int64) ChurnParams {
	return ChurnParams{ServiceLoss: 0.05, ForwardedLoss: 0.22, HostLoss: 0.025, Seed: seed}
}

// Churn returns a new universe derived from u with services and hosts
// removed per the parameters. The input universe is not modified; hosts
// that survive unchanged are shared between the two universes.
//
// Churn is partition-stable: every host draws its coin flips from its
// own (churn seed, IP) sub-seed, never from a stream shared across
// hosts, so churning a partitioned universe yields exactly the full
// universe's churn restricted to the owned addresses. This is what lets
// a shard worker replay churn over only the hosts it holds and still
// agree byte-for-byte with the full-world run.
func Churn(u *Universe, p ChurnParams) *Universe {
	out := &Universe{
		ases:     u.ases,
		routes:   u.routes,
		prefixes: u.prefixes,
		hosts:    make(map[asndb.IP]*Host, len(u.hosts)),
		seed:     u.seed,
		part:     u.part,
	}
	for _, h := range u.hostList {
		rng := newRNG(p.Seed, "churn", uint64(h.IP))
		if rng.Float64() < p.HostLoss {
			continue
		}
		var drop []uint16
		// Walk services in sorted port order: ranging over the map here
		// would consume the host rng's coin flips in a different order
		// every run, making churn nondeterministic for a fixed seed.
		for _, port := range h.Ports() {
			svc := h.services[port]
			loss := p.ServiceLoss
			if svc.Forwarded {
				loss = p.ForwardedLoss
			}
			if rng.Float64() < loss {
				drop = append(drop, port)
			}
		}
		if len(drop) == 0 {
			out.insertHost(h)
			continue
		}
		if len(drop) == len(h.services) && h.pseudoTmpl == nil {
			continue // every service lost: host is gone
		}
		nh := NewHost(h.IP, h.ASN, h.Profile)
		nh.Middlebox = h.Middlebox
		nh.pseudoLo, nh.pseudoHi, nh.pseudoTmpl = h.pseudoLo, h.pseudoHi, h.pseudoTmpl
		dropSet := make(map[uint16]bool, len(drop))
		for _, d := range drop {
			dropSet[d] = true
		}
		for port, svc := range h.services {
			if !dropSet[port] {
				nh.AddService(svc)
			}
		}
		out.insertHost(nh)
	}
	out.finalize()
	return out
}
