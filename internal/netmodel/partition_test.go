package netmodel

import (
	"testing"

	"gps/internal/asndb"
)

// hostsEqual deep-compares two hosts: identity, explicit services with
// every feature value, pseudo block, middlebox flag.
func hostsEqual(t *testing.T, a, b *Host) bool {
	t.Helper()
	if a.IP != b.IP || a.ASN != b.ASN || a.Profile != b.Profile || a.Middlebox != b.Middlebox {
		return false
	}
	if a.pseudoLo != b.pseudoLo || a.pseudoHi != b.pseudoHi ||
		(a.pseudoTmpl == nil) != (b.pseudoTmpl == nil) {
		return false
	}
	if len(a.services) != len(b.services) {
		return false
	}
	for port, sa := range a.services {
		sb, ok := b.services[port]
		if !ok {
			return false
		}
		if sa.Proto != sb.Proto || sa.TTL != sb.TTL || sa.Forwarded != sb.Forwarded || sa.Pseudo != sb.Pseudo {
			return false
		}
		if len(sa.Feats) != len(sb.Feats) {
			return false
		}
		for k, v := range sa.Feats {
			if sb.Feats[k] != v {
				return false
			}
		}
	}
	return true
}

// requireRestriction asserts sub == full restricted to the addresses
// part owns, host by host and service by service.
func requireRestriction(t *testing.T, full, sub *Universe, part *Partition) {
	t.Helper()
	owned := 0
	for _, h := range full.Hosts() {
		if !part.Owns(h.IP) {
			if _, leak := sub.HostAt(h.IP); leak {
				t.Fatalf("partitioned universe materialized unowned host %v", h.IP)
			}
			continue
		}
		owned++
		sh, ok := sub.HostAt(h.IP)
		if !ok {
			t.Fatalf("partitioned universe missing owned host %v", h.IP)
		}
		if !hostsEqual(t, h, sh) {
			t.Fatalf("owned host %v differs between full and partitioned generation", h.IP)
		}
	}
	if sub.NumHosts() != owned {
		t.Fatalf("partitioned universe holds %d hosts; full restricted to owned holds %d", sub.NumHosts(), owned)
	}
}

// TestPartitionedEqualsFullRestricted is the tentpole contract: for each
// shard of a 4-way split, generating only that partition yields exactly
// the full universe's hosts restricted to the owned addresses — and the
// equality survives three churn epochs, because churn is per-host
// sub-seeded too.
func TestPartitionedEqualsFullRestricted(t *testing.T) {
	const n = 4
	p := TestParams(5)
	full := Generate(p)

	for s := 0; s < n; s++ {
		part := &Partition{Count: n, Owned: []int{s}}
		pp := p
		pp.Partition = part
		sub := Generate(pp)
		if sub.SpaceSize() != full.SpaceSize() || len(sub.Prefixes()) != len(full.Prefixes()) {
			t.Fatalf("shard %d: partitioned universe lost global structure", s)
		}
		if sub.NumHosts() >= full.NumHosts() {
			t.Fatalf("shard %d: partitioned universe holds %d of %d hosts; expected ~1/%d",
				s, sub.NumHosts(), full.NumHosts(), n)
		}
		requireRestriction(t, full, sub, part)

		fu, su := full, sub
		for e := 1; e <= 3; e++ {
			cp := DefaultChurn(p.Seed + int64(e))
			fu, su = Churn(fu, cp), Churn(su, cp)
			requireRestriction(t, fu, su, part)
		}
	}
}

// TestPartitionMultiShardAndMerge: a partition owning {0, 2} equals the
// merge of the {0} and {2} partitions, and both equal the full universe
// restricted.
func TestPartitionMultiShardAndMerge(t *testing.T) {
	const n = 4
	p := TestParams(11)
	full := Generate(p)

	both := p
	both.Partition = &Partition{Count: n, Owned: []int{0, 2}}
	direct := Generate(both)
	requireRestriction(t, full, direct, both.Partition)

	gen := func(owned ...int) *Universe {
		pp := p
		pp.Partition = &Partition{Count: n, Owned: owned}
		return Generate(pp)
	}
	merged, err := Merge(gen(0), gen(2))
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumHosts() != direct.NumHosts() || merged.NumServices() != direct.NumServices() {
		t.Fatalf("merged {0}+{2} holds %d hosts / %d services; direct {0,2} holds %d / %d",
			merged.NumHosts(), merged.NumServices(), direct.NumHosts(), direct.NumServices())
	}
	for _, h := range direct.Hosts() {
		mh, ok := merged.HostAt(h.IP)
		if !ok || !hostsEqual(t, h, mh) {
			t.Fatalf("host %v differs between direct and merged generation", h.IP)
		}
	}
	if part := merged.Partition(); part == nil || part.Count != n || len(part.Owned) != 2 ||
		part.Owned[0] != 0 || part.Owned[1] != 2 {
		t.Errorf("merged partition = %+v; want {Count: 4, Owned: [0 2]}", merged.Partition())
	}

	// Merging overlapping partitions must refuse.
	if _, err := Merge(gen(0), gen(0, 2)); err == nil {
		t.Error("merging overlapping partitions succeeded")
	}
	// Merging different worlds must refuse.
	q := TestParams(12)
	q.Partition = &Partition{Count: n, Owned: []int{1}}
	if _, err := Merge(gen(0), Generate(q)); err == nil {
		t.Error("merging universes from different seeds succeeded")
	}
}

// TestPartitionMergeAfterChurn models the worker extend path: a {0}
// partition churned two epochs, merged with a {1} partition churned the
// same two epochs, equals the {0,1} partition churned two epochs.
func TestPartitionMergeAfterChurn(t *testing.T) {
	const n = 4
	p := TestParams(21)
	churn2 := func(u *Universe) *Universe {
		for e := 1; e <= 2; e++ {
			u = Churn(u, DefaultChurn(p.Seed+int64(e)))
		}
		return u
	}
	gen := func(owned ...int) *Universe {
		pp := p
		pp.Partition = &Partition{Count: n, Owned: owned}
		return Generate(pp)
	}
	merged, err := Merge(churn2(gen(0)), churn2(gen(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := churn2(gen(0, 1))
	if merged.NumHosts() != want.NumHosts() || merged.NumServices() != want.NumServices() {
		t.Fatalf("churned merge holds %d hosts / %d services; want %d / %d",
			merged.NumHosts(), merged.NumServices(), want.NumHosts(), want.NumServices())
	}
	for _, h := range want.Hosts() {
		mh, ok := merged.HostAt(h.IP)
		if !ok || !hostsEqual(t, h, mh) {
			t.Fatalf("host %v differs between churn-then-merge and merge-then-churn", h.IP)
		}
	}
}

// TestGenerateCheckedRejects: parameters that cross a trust boundary
// (a worker's world spec) must error, not panic.
func TestGenerateCheckedRejects(t *testing.T) {
	nan := 0.0
	nan /= nan
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero prefixes", func(p *Params) { p.NumPrefix16 = 0 }},
		{"huge prefixes", func(p *Params) { p.NumPrefix16 = 1 << 20 }},
		{"zero ases", func(p *Params) { p.NumASes = 0 }},
		{"negative density", func(p *Params) { p.HostDensity = -0.5 }},
		{"density above 1", func(p *Params) { p.HostDensity = 40 }},
		{"NaN density", func(p *Params) { p.HostDensity = nan }},
		{"NaN pseudo fraction", func(p *Params) { p.PseudoHostFraction = nan }},
		{"partition owns nothing", func(p *Params) { p.Partition = &Partition{Count: 4} }},
		{"partition index out of range", func(p *Params) { p.Partition = &Partition{Count: 4, Owned: []int{4}} }},
		{"partition duplicate index", func(p *Params) { p.Partition = &Partition{Count: 4, Owned: []int{1, 1}} }},
		{"partition negative count", func(p *Params) { p.Partition = &Partition{Count: -1, Owned: []int{0}} }},
	}
	for _, c := range cases {
		p := TestParams(5)
		c.mut(&p)
		if _, err := GenerateChecked(p); err == nil {
			t.Errorf("%s: GenerateChecked accepted invalid params", c.name)
		}
	}
	if _, err := GenerateChecked(TestParams(5)); err != nil {
		t.Errorf("GenerateChecked rejected valid params: %v", err)
	}
}

// TestPartitionOwns pins the ownership predicate to asndb.ShardOf.
func TestPartitionOwns(t *testing.T) {
	part := &Partition{Count: 4, Owned: []int{1, 3}}
	for ip := asndb.IP(0); ip < 4096; ip += 97 {
		s := asndb.ShardOf(ip, 4)
		if got, want := part.Owns(ip), s == 1 || s == 3; got != want {
			t.Fatalf("Owns(%v) = %v; ShardOf says shard %d", ip, got, s)
		}
	}
	var full *Partition
	if !full.Owns(1234) || !full.Full() {
		t.Error("nil partition must own everything")
	}
	if (&Partition{Count: 1}).Full() != true {
		t.Error("count-1 partition must be full")
	}
}

// TestPartitionedFeatureScopes: scoped feature values (per-host hashes,
// variants) must not depend on partitioning — spot-checked over the
// fritzbox fleet like TestFeatureScopes does for the full universe.
func TestPartitionedFeatureScopes(t *testing.T) {
	p := TestParams(5)
	full := Generate(p)
	pp := p
	pp.Partition = &Partition{Count: 2, Owned: []int{1}}
	sub := Generate(pp)
	checked := 0
	for _, h := range sub.Hosts() {
		fh, ok := full.HostAt(h.IP)
		if !ok {
			t.Fatalf("partitioned host %v missing from full universe", h.IP)
		}
		for port, svc := range h.Services() {
			fsvc, ok := fh.ServiceAt(port)
			if !ok {
				t.Fatalf("partitioned service %v:%d missing from full universe", h.IP, port)
			}
			for k, v := range svc.Feats {
				if fsvc.Feats[k] != v {
					t.Fatalf("feature %v of %v:%d = %q partitioned, %q full", k, h.IP, port, v, fsvc.Feats[k])
				}
				checked++
			}
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d feature values compared; universe too small to trust", checked)
	}
}
