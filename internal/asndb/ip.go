// Package asndb provides IPv4 address arithmetic, CIDR prefixes, and a
// longest-prefix-match routing table mapping prefixes to autonomous system
// numbers. GPS's network-layer features (Table 1) are the IP's /16
// subnetwork and its ASN; both are answered by this package.
package asndb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// ParseIP parses dotted-quad notation.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("asndb: invalid IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("asndb: invalid IPv4 address %q: %v", s, err)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP that panics on error; for tests and literals.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octet returns octet i of the address (0 is the most significant).
func (ip IP) Octet(i int) byte {
	if i < 0 || i > 3 {
		panic("asndb: octet index out of range")
	}
	return byte(ip >> (24 - 8*i))
}

// Prefix is a CIDR block: the masked network address plus a prefix length.
type Prefix struct {
	Addr IP    // network address, already masked
	Bits uint8 // prefix length, 0..32
}

// ErrBadPrefix reports an out-of-range prefix length.
var ErrBadPrefix = errors.New("asndb: prefix length out of range")

// NewPrefix masks addr to bits and returns the prefix.
func NewPrefix(addr IP, bits uint8) (Prefix, error) {
	if bits > 32 {
		return Prefix{}, ErrBadPrefix
	}
	return Prefix{Addr: addr & Mask(bits), Bits: bits}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(addr IP, bits uint8) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("asndb: missing / in prefix %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("asndb: invalid prefix length in %q", s)
	}
	return NewPrefix(ip, uint8(bits))
}

// Mask returns the netmask for a prefix length.
func Mask(bits uint8) IP {
	if bits == 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - bits))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool { return ip&Mask(p.Bits) == p.Addr }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// First returns the lowest address in the prefix.
func (p Prefix) First() IP { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() IP { return p.Addr | ^Mask(p.Bits) }

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// SubnetOf returns the enclosing subnet of ip with the given prefix length.
// A step size of /0 covers the entire address space, matching the paper's
// "scanning step size" parameter (§5.3).
func SubnetOf(ip IP, bits uint8) Prefix {
	return Prefix{Addr: ip & Mask(bits), Bits: bits}
}

// Subnet16 returns the /16 subnetwork feature value for an IP, formatted in
// CIDR notation as GPS's network feature (Table 1).
func Subnet16(ip IP) string { return SubnetOf(ip, 16).String() }

// ShardOf maps an address to one of n shards via a 32-bit FNV-1a hash of
// its octets. The assignment is a pure function of (ip, n): stable across
// processes, runs, and churn, so a sharded deployment can checkpoint and
// resume without hosts migrating between shards. n <= 1 always yields 0.
func ShardOf(ip IP, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	h := uint32(fnvOffset)
	h = (h ^ uint32(byte(ip>>24))) * fnvPrime
	h = (h ^ uint32(byte(ip>>16))) * fnvPrime
	h = (h ^ uint32(byte(ip>>8))) * fnvPrime
	h = (h ^ uint32(byte(ip))) * fnvPrime
	return int(h % uint32(n))
}

// ShardOwns reports whether shard index of an n-way split owns ip. It is
// the single ownership predicate every sharded layer (scanner, pipeline,
// continuous, shard.Filter) shares; count <= 1 means unsharded, which
// owns everything.
func ShardOwns(ip IP, index, count int) bool {
	return count <= 1 || ShardOf(ip, count) == index
}
