package asndb

import (
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	cases := []struct {
		s  string
		ip IP
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"1.2.3.4", 0x01020304},
		{"192.168.0.1", 0xc0a80001},
	}
	for _, c := range cases {
		got, err := ParseIP(c.s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", c.s, err)
		}
		if got != c.ip {
			t.Errorf("ParseIP(%q) = %v; want %v", c.s, uint32(got), uint32(c.ip))
		}
		if got.String() != c.s {
			t.Errorf("String() = %q; want %q", got.String(), c.s)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-1"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded; want error", s)
		}
	}
}

// TestIPStringParseQuick property: String/Parse round-trips for any IP.
func TestIPStringParseQuick(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IP(raw)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOctet(t *testing.T) {
	ip := MustParseIP("10.20.30.40")
	for i, want := range []byte{10, 20, 30, 40} {
		if got := ip.Octet(i); got != want {
			t.Errorf("Octet(%d) = %d; want %d", i, got, want)
		}
	}
}

func TestOctetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Octet(4) did not panic")
		}
	}()
	MustParseIP("1.2.3.4").Octet(4)
}

func TestPrefixBasics(t *testing.T) {
	p := MustPrefix(MustParseIP("10.1.2.3"), 16)
	if p.Addr != MustParseIP("10.1.0.0") {
		t.Errorf("prefix addr not masked: %v", p.Addr)
	}
	if p.Size() != 65536 {
		t.Errorf("Size() = %d; want 65536", p.Size())
	}
	if !p.Contains(MustParseIP("10.1.255.255")) {
		t.Error("Contains failed for last address")
	}
	if p.Contains(MustParseIP("10.2.0.0")) {
		t.Error("Contains succeeded outside prefix")
	}
	if p.First() != MustParseIP("10.1.0.0") || p.Last() != MustParseIP("10.1.255.255") {
		t.Errorf("First/Last wrong: %v %v", p.First(), p.Last())
	}
	if p.String() != "10.1.0.0/16" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestPrefixEdgeCases(t *testing.T) {
	whole := MustPrefix(0, 0)
	if whole.Size() != 1<<32 {
		t.Errorf("/0 size = %d", whole.Size())
	}
	if !whole.Contains(MustParseIP("255.255.255.255")) {
		t.Error("/0 must contain everything")
	}
	host := MustPrefix(MustParseIP("1.2.3.4"), 32)
	if host.Size() != 1 || !host.Contains(MustParseIP("1.2.3.4")) || host.Contains(MustParseIP("1.2.3.5")) {
		t.Error("/32 semantics wrong")
	}
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("prefix length 33 accepted")
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.4.0/22")
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != 22 || p.Addr != MustParseIP("192.168.4.0") {
		t.Errorf("ParsePrefix wrong: %v", p)
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "x/16", "1.2.3.4/"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

// TestSubnetOfQuick property: an IP is always inside its own subnet, and
// the subnet of any IP in that subnet is the same subnet.
func TestSubnetOfQuick(t *testing.T) {
	f := func(raw uint32, bits8 uint8) bool {
		bits := bits8 % 33
		ip := IP(raw)
		sub := SubnetOf(ip, bits)
		if !sub.Contains(ip) {
			return false
		}
		return SubnetOf(sub.First(), bits) == sub && SubnetOf(sub.Last(), bits) == sub
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubnet16(t *testing.T) {
	if got := Subnet16(MustParseIP("10.20.30.40")); got != "10.20.0.0/16" {
		t.Errorf("Subnet16 = %q", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(32) != 0xffffffff {
		t.Error("Mask(32) wrong")
	}
	if Mask(24) != 0xffffff00 {
		t.Error("Mask(24) wrong")
	}
}

func TestShardOf(t *testing.T) {
	if got := ShardOf(MustParseIP("10.20.30.40"), 0); got != 0 {
		t.Errorf("ShardOf(_, 0) = %d; want 0", got)
	}
	if got := ShardOf(MustParseIP("10.20.30.40"), 1); got != 0 {
		t.Errorf("ShardOf(_, 1) = %d; want 0", got)
	}
	// Pin the hash so checkpoints written by one build resume under
	// another: these values are part of the sharded checkpoint contract.
	pinned := []struct {
		ip   string
		n    int
		want int
	}{
		{"10.20.30.40", 4, 1},
		{"0.0.0.0", 8, 5},
		{"203.0.113.77", 16, 0},
	}
	for _, p := range pinned {
		if got := ShardOf(MustParseIP(p.ip), p.n); got != p.want {
			t.Errorf("ShardOf(%s, %d) = %d; pinned value %d", p.ip, p.n, got, p.want)
		}
	}
	// Every shard index is in range, and the split of a /16 is roughly
	// even: no shard owns more than twice its fair share.
	const n = 8
	var counts [n]int
	base := MustParseIP("192.168.0.0")
	for i := 0; i < 1<<16; i++ {
		s := ShardOf(base+IP(i), n)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf out of range: %d", s)
		}
		counts[s]++
	}
	fair := (1 << 16) / n
	for s, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("shard %d owns %d of 65536 addresses; want near %d", s, c, fair)
		}
	}
}
