package asndb

import (
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the conventional "AS1234" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Table is a longest-prefix-match routing table mapping prefixes to ASNs.
// It is implemented as a binary (unibit) trie. The zero value is an empty
// table ready for use. Tables are not safe for concurrent mutation, but are
// safe for concurrent lookups once built.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	asn   ASN
	set   bool
}

// Insert adds a route. Inserting the same prefix twice overwrites the
// previous ASN.
func (t *Table) Insert(p Prefix, asn ASN) {
	if t.root == nil {
		t.root = &node{}
	}
	cur := t.root
	for i := uint8(0); i < p.Bits; i++ {
		b := (uint32(p.Addr) >> (31 - i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.n++
	}
	cur.asn = asn
	cur.set = true
}

// Lookup returns the ASN of the longest matching prefix for ip, and whether
// any route matched.
func (t *Table) Lookup(ip IP) (ASN, bool) {
	if t.root == nil {
		return 0, false
	}
	var (
		best   ASN
		found  bool
		cur    = t.root
		addr   = uint32(ip)
		bitpos = 31
	)
	if cur.set {
		best, found = cur.asn, true
	}
	for cur != nil && bitpos >= 0 {
		cur = cur.child[(addr>>bitpos)&1]
		bitpos--
		if cur != nil && cur.set {
			best, found = cur.asn, true
		}
	}
	return best, found
}

// Len returns the number of routes in the table.
func (t *Table) Len() int { return t.n }

// Route is one table entry, used for enumeration.
type Route struct {
	Prefix Prefix
	ASN    ASN
}

// Routes returns all entries sorted by network address then prefix length.
func (t *Table) Routes() []Route {
	var out []Route
	var walk func(n *node, addr uint32, depth uint8)
	walk = func(n *node, addr uint32, depth uint8) {
		if n == nil {
			return
		}
		if n.set {
			out = append(out, Route{Prefix: Prefix{Addr: IP(addr), Bits: depth}, ASN: n.asn})
		}
		walk(n.child[0], addr, depth+1)
		walk(n.child[1], addr|1<<(31-depth), depth+1)
	}
	walk(t.root, 0, 0)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Bits < out[j].Prefix.Bits
	})
	return out
}
