package asndb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableLookupBasics(t *testing.T) {
	var tb Table
	if _, ok := tb.Lookup(MustParseIP("1.2.3.4")); ok {
		t.Error("empty table matched")
	}
	tb.Insert(MustPrefix(MustParseIP("10.0.0.0"), 8), 100)
	tb.Insert(MustPrefix(MustParseIP("10.1.0.0"), 16), 200)
	tb.Insert(MustPrefix(MustParseIP("10.1.2.0"), 24), 300)

	cases := []struct {
		ip   string
		asn  ASN
		want bool
	}{
		{"10.1.2.3", 300, true}, // longest match /24
		{"10.1.9.9", 200, true}, // /16
		{"10.9.9.9", 100, true}, // /8
		{"11.0.0.1", 0, false},  // no match
		{"10.1.2.255", 300, true},
	}
	for _, c := range cases {
		asn, ok := tb.Lookup(MustParseIP(c.ip))
		if ok != c.want || (ok && asn != c.asn) {
			t.Errorf("Lookup(%s) = %v,%v; want %v,%v", c.ip, asn, ok, c.asn, c.want)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len() = %d; want 3", tb.Len())
	}
}

func TestTableDefaultRoute(t *testing.T) {
	var tb Table
	tb.Insert(MustPrefix(0, 0), 1)
	asn, ok := tb.Lookup(MustParseIP("200.1.2.3"))
	if !ok || asn != 1 {
		t.Error("default route not matched")
	}
}

func TestTableOverwrite(t *testing.T) {
	var tb Table
	p := MustPrefix(MustParseIP("10.0.0.0"), 8)
	tb.Insert(p, 1)
	tb.Insert(p, 2)
	if tb.Len() != 1 {
		t.Errorf("Len() = %d after overwrite; want 1", tb.Len())
	}
	if asn, _ := tb.Lookup(MustParseIP("10.1.1.1")); asn != 2 {
		t.Errorf("overwrite lost: got %v", asn)
	}
}

func TestTableRoutes(t *testing.T) {
	var tb Table
	routes := []Route{
		{MustPrefix(MustParseIP("10.0.0.0"), 8), 1},
		{MustPrefix(MustParseIP("10.1.0.0"), 16), 2},
		{MustPrefix(MustParseIP("192.168.0.0"), 16), 3},
	}
	for _, r := range routes {
		tb.Insert(r.Prefix, r.ASN)
	}
	got := tb.Routes()
	if len(got) != len(routes) {
		t.Fatalf("Routes() returned %d entries; want %d", len(got), len(routes))
	}
	for i, r := range got {
		if r != routes[i] {
			t.Errorf("route %d = %v; want %v", i, r, routes[i])
		}
	}
}

// lookupNaive is the reference longest-prefix-match implementation.
func lookupNaive(routes []Route, ip IP) (ASN, bool) {
	bestBits := -1
	var best ASN
	for _, r := range routes {
		if r.Prefix.Contains(ip) && int(r.Prefix.Bits) > bestBits {
			bestBits = int(r.Prefix.Bits)
			best = r.ASN
		}
	}
	return best, bestBits >= 0
}

// TestTableLookupQuick property: trie lookup equals a naive linear scan
// for random tables and random addresses.
func TestTableLookupQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tb Table
		var routes []Route
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			bits := uint8(r.Intn(25))
			pfx := MustPrefix(IP(r.Uint32()), bits)
			asn := ASN(r.Intn(1000))
			// Overwrite semantics: keep only the last insert per prefix
			// in the reference too.
			replaced := false
			for j := range routes {
				if routes[j].Prefix == pfx {
					routes[j].ASN = asn
					replaced = true
					break
				}
			}
			if !replaced {
				routes = append(routes, Route{pfx, asn})
			}
			tb.Insert(pfx, asn)
		}
		for i := 0; i < 50; i++ {
			ip := IP(rng.Uint32())
			wantASN, wantOK := lookupNaive(routes, ip)
			gotASN, gotOK := tb.Lookup(ip)
			if gotOK != wantOK || (gotOK && gotASN != wantASN) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
