package dataset

import (
	"sync"
	"testing"

	"gps/internal/netmodel"
)

func testUniverse(t *testing.T) *netmodel.Universe {
	t.Helper()
	return netmodel.Generate(netmodel.TestParams(3))
}

func TestSnapshotCensysFiltersAndScopes(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotCensys(u, 50)
	if len(d.Ports) != 50 {
		t.Fatalf("snapshot covers %d ports; want 50", len(d.Ports))
	}
	portSet := make(map[uint16]bool)
	for _, p := range d.Ports {
		portSet[p] = true
	}
	for _, r := range d.Records {
		if !portSet[r.Port] {
			t.Fatalf("record on un-snapshotted port %d", r.Port)
		}
		h, ok := u.HostAt(r.IP)
		if !ok {
			t.Fatal("record for nonexistent host")
		}
		if h.Middlebox {
			t.Fatal("middlebox leaked into dataset")
		}
		if h.NumServices() > 10 {
			t.Fatal("pseudo-service host leaked into dataset (Appendix B filter)")
		}
	}
	if d.CollectionProbes != u.SpaceSize()*50 {
		t.Errorf("collection probes = %d; want %d", d.CollectionProbes, u.SpaceSize()*50)
	}
	if d.SampleFraction != 1 {
		t.Error("Censys snapshot must be a 100% sample")
	}
}

func TestSnapshotLZRSampling(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotLZR(u, 0.5, 7)
	hosts := len(d.IPs())
	// Note: universe hosts include middleboxes/pseudo hosts that the
	// snapshot filters, so compare against the filtered population.
	total := 0
	for _, h := range u.Hosts() {
		if !h.Middlebox && h.NumServices() <= 10 {
			total++
		}
	}
	if hosts < total/3 || hosts > 2*total/3 {
		t.Errorf("0.5 sample captured %d of %d hosts", hosts, total)
	}
	if d.CollectionProbes != uint64(0.5*float64(u.SpaceSize()))*65536 {
		t.Errorf("collection probes = %d", d.CollectionProbes)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotLZR(u, 0.5, 7)
	seed, test := d.Split(0.1, 9)
	seedIPs := make(map[uint32]bool)
	for _, ip := range seed.IPs() {
		seedIPs[uint32(ip)] = true
	}
	for _, ip := range test.IPs() {
		if seedIPs[uint32(ip)] {
			t.Fatalf("IP %v in both seed and test", ip)
		}
	}
	if seed.NumServices()+test.NumServices() != d.NumServices() {
		t.Errorf("split lost services: %d + %d != %d",
			seed.NumServices(), test.NumServices(), d.NumServices())
	}
	// Roughly 20% of the sampled IPs (0.1 of space / 0.5 sample).
	frac := float64(len(seed.IPs())) / float64(len(d.IPs()))
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("seed fraction of IPs = %.2f; want ~0.2", frac)
	}
}

func TestEligiblePortsAndFilter(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotLZR(u, 0.5, 7)
	eligible := d.EligiblePorts(2)
	pop := d.PortPopulation()
	for p, c := range pop {
		if (c > 2) != eligible[uint16(p)] {
			t.Fatalf("port %d count %d eligibility wrong", p, c)
		}
	}
	f := d.FilterPorts(eligible)
	for _, r := range f.Records {
		if !eligible[r.Port] {
			t.Fatal("filtered dataset contains ineligible port")
		}
	}
	if f.NumServices() >= d.NumServices() {
		t.Error("filter removed nothing; expected a long tail of rare ports")
	}
}

func TestByHostSortedAndComplete(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotLZR(u, 0.3, 7)
	groups := d.ByHost()
	n := 0
	for i, g := range groups {
		if i > 0 && groups[i-1].IP >= g.IP {
			t.Fatal("host groups not sorted by IP")
		}
		for j := 1; j < len(g.Records); j++ {
			if g.Records[j-1].Port >= g.Records[j].Port {
				t.Fatal("records within host not sorted by port")
			}
		}
		n += len(g.Records)
	}
	if n != d.NumServices() {
		t.Errorf("ByHost covers %d records; want %d", n, d.NumServices())
	}
}

func TestContainsAndRecordsFor(t *testing.T) {
	u := testUniverse(t)
	d := SnapshotLZR(u, 0.3, 7)
	r := d.Records[0]
	if !d.Contains(r.IP, r.Port) {
		t.Error("Contains missed an existing record")
	}
	if d.Contains(r.IP, 64999) && u.Responsive(r.IP, 64999) == false {
		t.Error("Contains invented a service")
	}
	recs := d.RecordsFor(r.IP)
	if len(recs) == 0 {
		t.Error("RecordsFor returned nothing")
	}
	if d.RecordsFor(0) != nil {
		t.Error("RecordsFor(0) should be nil")
	}
}

func TestTopPortsOrdering(t *testing.T) {
	u := testUniverse(t)
	ports := TopPorts(u, 10)
	if len(ports) != 10 {
		t.Fatalf("TopPorts returned %d", len(ports))
	}
	pop := u.PortPopulation()
	for i := 1; i < len(ports); i++ {
		if pop[ports[i-1]] < pop[ports[i]] {
			t.Fatal("TopPorts not in descending popularity")
		}
	}
}

func TestRecordKey(t *testing.T) {
	r := Record{IP: 42, Port: 80}
	k := r.Key()
	if k.IP != 42 || k.Port != 80 {
		t.Error("Key() wrong")
	}
}

// TestByHostConcurrent guards the sharded fan-out contract: N pipelines
// share one broadcast seed dataset and all call ByHost concurrently on a
// dataset whose lazy index was never built. ByHost must be a pure read
// (run under -race in CI).
func TestByHostConcurrent(t *testing.T) {
	u := netmodel.Generate(netmodel.TestParams(3))
	fresh := SnapshotLZR(u, 0.2, 5) // never indexed
	want := len(fresh.ByHost())
	fresh = SnapshotLZR(u, 0.2, 5) // fresh again: drop any cached state
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if got := len(fresh.ByHost()); got != want {
				t.Errorf("concurrent ByHost returned %d hosts; want %d", got, want)
			}
		}()
	}
	close(start)
	wg.Wait()
}
