package dataset

import (
	"sort"

	"gps/internal/asndb"
)

// HostGroup is one host's records: the unit the probabilistic model trains
// over, since every conditional probability in §5.2 is a statement about
// co-occurrence on a single host.
type HostGroup struct {
	IP      asndb.IP
	Records []Record
}

// ByHost groups the dataset's records per IP, sorted by IP and, within a
// host, by port. The result is deterministic for a given dataset. ByHost
// deliberately avoids the dataset's lazy index — it groups into a local
// map — so it is a pure read: sharded runs hand one broadcast seed set to
// N concurrent pipelines, all of which start here.
func (d *Dataset) ByHost() []HostGroup {
	groups := make(map[asndb.IP][]Record)
	for _, r := range d.Records {
		groups[r.IP] = append(groups[r.IP], r)
	}
	out := make([]HostGroup, 0, len(groups))
	for ip, recs := range groups {
		g := HostGroup{IP: ip, Records: recs}
		sort.Slice(g.Records, func(i, j int) bool { return g.Records[i].Port < g.Records[j].Port })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}
