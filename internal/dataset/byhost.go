package dataset

import (
	"sort"

	"gps/internal/asndb"
)

// HostGroup is one host's records: the unit the probabilistic model trains
// over, since every conditional probability in §5.2 is a statement about
// co-occurrence on a single host.
type HostGroup struct {
	IP      asndb.IP
	Records []Record
}

// ByHost groups the dataset's records per IP, sorted by IP and, within a
// host, by port. The result is deterministic for a given dataset.
func (d *Dataset) ByHost() []HostGroup {
	d.index()
	out := make([]HostGroup, 0, len(d.byIP))
	for ip, idxs := range d.byIP {
		g := HostGroup{IP: ip, Records: make([]Record, len(idxs))}
		for i, idx := range idxs {
			g.Records[i] = d.Records[idx]
		}
		sort.Slice(g.Records, func(i, j int) bool { return g.Records[i].Port < g.Records[j].Port })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}
