// Package dataset builds and manipulates ground-truth service datasets.
// The paper evaluates GPS against two datasets (§6.1): the Censys Universal
// dataset (100% IPv4 scans of the ~2K most popular ports) and an LZR scan
// (1% of the address space across all 65K ports). This package snapshots
// the synthetic universe in both shapes, applies the Appendix B
// real-service filtering, and produces the seed/test splits used
// throughout the evaluation.
package dataset

import (
	"math/rand"
	"sort"

	"gps/internal/asndb"
	"gps/internal/features"
	"gps/internal/lzr"
	"gps/internal/netmodel"
)

// Record is one observed service: the unit of both training and ground
// truth. Feats is shared with the universe; callers must not mutate it.
type Record struct {
	IP    asndb.IP
	Port  uint16
	Proto features.Protocol
	Feats features.Set
	ASN   asndb.ASN
	TTL   uint8
}

// Key returns the (IP, port) identity of the record.
func (r Record) Key() netmodel.Key { return netmodel.Key{IP: r.IP, Port: r.Port} }

// Dataset is a named collection of service records plus the metadata
// needed to interpret bandwidth figures against it.
type Dataset struct {
	Name    string
	Records []Record
	// SpaceSize is the scannable address count of the originating
	// universe; bandwidth in "100% scans" is probes/SpaceSize.
	SpaceSize uint64
	// SampleFraction is the share of the address space the snapshot
	// covered (1.0 for Censys-style 100% scans).
	SampleFraction float64
	// Ports is the set of ports the snapshot scanned (nil = all 65536).
	Ports []uint16
	// CollectionProbes is the bandwidth a real scan would have spent
	// collecting this snapshot.
	CollectionProbes uint64

	// byIP holds record indexes per IP, built lazily. The lazy build is
	// NOT safe for concurrent first use: methods that call index()
	// (Contains, RecordsFor, IPs, Split) must not race on a fresh
	// dataset. ByHost — the one accessor sharded pipelines call
	// concurrently on a shared seed set — deliberately does not use it.
	byIP map[asndb.IP][]int
}

// NumServices returns the record count.
func (d *Dataset) NumServices() int { return len(d.Records) }

// IPs returns the distinct responsive addresses in the dataset, sorted.
func (d *Dataset) IPs() []asndb.IP {
	d.index()
	out := make([]asndb.IP, 0, len(d.byIP))
	for ip := range d.byIP {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordsFor returns the records of one IP (nil if absent).
func (d *Dataset) RecordsFor(ip asndb.IP) []Record {
	d.index()
	idxs := d.byIP[ip]
	if idxs == nil {
		return nil
	}
	out := make([]Record, len(idxs))
	for i, idx := range idxs {
		out[i] = d.Records[idx]
	}
	return out
}

// Contains reports whether the dataset holds service (ip, port).
func (d *Dataset) Contains(ip asndb.IP, port uint16) bool {
	d.index()
	for _, idx := range d.byIP[ip] {
		if d.Records[idx].Port == port {
			return true
		}
	}
	return false
}

// PortPopulation returns responsive-IP counts per port.
func (d *Dataset) PortPopulation() []int {
	pop := make([]int, netmodel.NumPorts)
	for _, r := range d.Records {
		pop[r.Port]++
	}
	return pop
}

func (d *Dataset) index() {
	if d.byIP != nil {
		return
	}
	d.byIP = make(map[asndb.IP][]int)
	for i, r := range d.Records {
		d.byIP[r.IP] = append(d.byIP[r.IP], i)
	}
}

// hostRecords converts one universe host into records, applying the
// Appendix B pseudo-service rule: hosts serving more than 10 services are
// dropped entirely, as are middleboxes. It returns nil for filtered hosts.
func hostRecords(h *netmodel.Host, ports map[uint16]bool) []Record {
	if h.Middlebox || lzr.IsPseudoHost(h) {
		return nil
	}
	var out []Record
	for _, port := range h.Ports() {
		svc, _ := h.ServiceAt(port)
		if ports != nil && !ports[port] {
			continue
		}
		if svc == nil || svc.Pseudo {
			continue
		}
		out = append(out, Record{
			IP: h.IP, Port: port, Proto: svc.Proto,
			Feats: svc.Feats, ASN: h.ASN, TTL: svc.TTL,
		})
	}
	return out
}

// TopPorts returns the k most populated ports of the universe in
// descending popularity, breaking ties by port number. This mirrors how
// Censys chooses which ports to scan at 100%.
func TopPorts(u *netmodel.Universe, k int) []uint16 {
	pop := u.PortPopulation()
	type pc struct {
		port  uint16
		count int
	}
	all := make([]pc, 0, 4096)
	for p, c := range pop {
		if c > 0 {
			all = append(all, pc{uint16(p), c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].port < all[j].port
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint16, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].port
	}
	return out
}

// SnapshotCensys captures a Censys-style dataset: 100% scans of the top-k
// most popular ports, with Appendix B filtering applied.
func SnapshotCensys(u *netmodel.Universe, k int) *Dataset {
	ports := TopPorts(u, k)
	portSet := make(map[uint16]bool, len(ports))
	for _, p := range ports {
		portSet[p] = true
	}
	d := &Dataset{
		Name:             "censys",
		SpaceSize:        u.SpaceSize(),
		SampleFraction:   1,
		Ports:            ports,
		CollectionProbes: u.SpaceSize() * uint64(len(ports)),
	}
	for _, h := range u.Hosts() {
		d.Records = append(d.Records, hostRecords(h, portSet)...)
	}
	return d
}

// SnapshotLZR captures an LZR-style dataset: a uniform random sample of
// the address space scanned across all 65K ports.
func SnapshotLZR(u *netmodel.Universe, fraction float64, seed int64) *Dataset {
	return SnapshotLZROpts(u, fraction, seed, true)
}

// SnapshotLZROpts is SnapshotLZR with the Appendix B pseudo-service filter
// optional. Disabling the filter (applyFilter=false) exists for the
// ablation study: it shows what GPS learns when pseudo services pollute
// the seed set.
func SnapshotLZROpts(u *netmodel.Universe, fraction float64, seed int64, applyFilter bool) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:             "lzr",
		SpaceSize:        u.SpaceSize(),
		SampleFraction:   fraction,
		CollectionProbes: uint64(float64(u.SpaceSize()) * fraction * netmodel.NumPorts),
	}
	for _, h := range u.Hosts() {
		if rng.Float64() >= fraction {
			continue
		}
		if applyFilter {
			d.Records = append(d.Records, hostRecords(h, nil)...)
			continue
		}
		d.Records = append(d.Records, hostRecordsUnfiltered(h)...)
	}
	return d
}

// hostRecordsUnfiltered keeps middleboxes out (they serve nothing to
// record) but admits pseudo-service hosts, truncating each pseudo block to
// a representative slice so datasets stay bounded.
func hostRecordsUnfiltered(h *netmodel.Host) []Record {
	var out []Record
	for _, port := range h.Ports() {
		svc, _ := h.ServiceAt(port)
		if svc == nil {
			continue
		}
		out = append(out, Record{
			IP: h.IP, Port: port, Proto: svc.Proto,
			Feats: svc.Feats, ASN: h.ASN, TTL: svc.TTL,
		})
	}
	if lo, hi, ok := h.PseudoBlock(); ok {
		const keep = 64 // representative slice of the block
		for p := int(lo); p <= int(hi) && p < int(lo)+keep; p++ {
			svc, _ := h.ServiceAt(uint16(p))
			out = append(out, Record{
				IP: h.IP, Port: uint16(p), Proto: svc.Proto,
				Feats: svc.Feats, ASN: h.ASN, TTL: svc.TTL,
			})
		}
	}
	return out
}

// Split partitions the dataset by IP address into a seed set covering
// seedFraction of the dataset's sampled space and a test set with the
// rest, exactly as §6.1 randomly assigns each IP and its services to one
// side. seedFraction is relative to the full address space, like the
// paper's "2% seed"; it must not exceed the dataset's own sample fraction.
func (d *Dataset) Split(seedFraction float64, seed int64) (seedSet, testSet *Dataset) {
	p := seedFraction / d.SampleFraction
	if p > 1 {
		p = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d.index()
	ips := d.IPs()
	seedSet = &Dataset{Name: d.Name + "-seed", SpaceSize: d.SpaceSize,
		SampleFraction: seedFraction, Ports: d.Ports,
		CollectionProbes: uint64(float64(d.CollectionProbes) * p)}
	testSet = &Dataset{Name: d.Name + "-test", SpaceSize: d.SpaceSize,
		SampleFraction: d.SampleFraction - seedFraction, Ports: d.Ports}
	for _, ip := range ips {
		dst := testSet
		if rng.Float64() < p {
			dst = seedSet
		}
		for _, idx := range d.byIP[ip] {
			dst.Records = append(dst.Records, d.Records[idx])
		}
	}
	return seedSet, testSet
}

// EligiblePorts returns ports with more than minIPs responsive addresses
// in the dataset. The paper filters the all-port evaluation to ports with
// greater than two responsive IPs (§6.1), since no pattern can be learned
// from a single example.
func (d *Dataset) EligiblePorts(minIPs int) map[uint16]bool {
	pop := d.PortPopulation()
	out := make(map[uint16]bool)
	for p, c := range pop {
		if c > minIPs {
			out[uint16(p)] = true
		}
	}
	return out
}

// FilterPorts returns a copy of the dataset keeping only records on the
// given ports.
func (d *Dataset) FilterPorts(keep map[uint16]bool) *Dataset {
	out := &Dataset{Name: d.Name + "-filtered", SpaceSize: d.SpaceSize,
		SampleFraction: d.SampleFraction, Ports: d.Ports,
		CollectionProbes: d.CollectionProbes}
	for _, r := range d.Records {
		if keep[r.Port] {
			out.Records = append(out.Records, r)
		}
	}
	return out
}
