package priors

import (
	"testing"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/probmodel"
)

// scenario: a fleet where the SSH service on 222 strongly predicts HTTP on
// 80 (the §5.3 example), plus single-service hosts on 7547.
func scenario() []dataset.HostGroup {
	var hosts []dataset.HostGroup
	mk := func(ipS string, recs ...dataset.Record) {
		ip := asndb.MustParseIP(ipS)
		for i := range recs {
			recs[i].IP = ip
			recs[i].ASN = 1
		}
		hosts = append(hosts, dataset.HostGroup{IP: ip, Records: recs})
	}
	web := dataset.Record{Port: 80, Proto: features.ProtocolHTTP,
		Feats: features.Set{features.KeyProtocol: "http"}}
	ssh := dataset.Record{Port: 222, Proto: features.ProtocolSSH,
		Feats: features.Set{features.KeyProtocol: "ssh", features.KeySSHBanner: "vendor"}}
	cwmp := dataset.Record{Port: 7547, Proto: features.ProtocolCWMP,
		Feats: features.Set{features.KeyProtocol: "cwmp"}}

	// Fleet: every 222 host also has 80; many extra hosts have 80 only,
	// so P(80|222)=1 while P(222|80) is low. The most predictive anchor
	// for these hosts is therefore 222.
	mk("10.0.1.1", web, ssh)
	mk("10.0.1.2", web, ssh)
	mk("10.0.1.3", web, ssh)
	for i := 0; i < 9; i++ {
		mk("10.0.2."+string(rune('1'+i)), web)
	}
	// Single-service CWMP hosts in a different /16.
	mk("11.0.0.1", cwmp)
	mk("11.0.0.2", cwmp)
	return hosts
}

func TestBuildChoosesMostPredictiveAnchor(t *testing.T) {
	hosts := scenario()
	m := probmodel.Build(probmodel.Config{Floor: -1, MinSupport: -1}, hosts)
	list := Build(m, hosts, 16, engine.Config{})

	if list.StepBits != 16 {
		t.Errorf("StepBits = %d", list.StepBits)
	}
	byTuple := make(map[string]int)
	for _, tgt := range list.Targets {
		byTuple[tgt.Subnet.String()+"#"+itoa(tgt.Port)] = tgt.Coverage
	}
	// The fleet hosts (both services) anchor on 222: predicting 80 via
	// the 222 anchor (P=1) and 222 via itself... For (IP, 80), best
	// cond comes from 222 (P(80|222)=1). For (IP, 222), best cond from
	// 80 (P(222|80)=3/12=0.25 > 0? yes). So tuples (222, subnet) and
	// (80, subnet) both exist; 222's coverage must include the three
	// fleet services on port 80.
	if byTuple["10.0.0.0/16#222"] < 3 {
		t.Errorf("anchor tuple (222, 10.0.0.0/16) coverage = %d; want >= 3", byTuple["10.0.0.0/16#222"])
	}
	// Single-service hosts contribute their own (port, subnet).
	if byTuple["11.0.0.0/16#7547"] != 2 {
		t.Errorf("tuple (7547, 11.0.0.0/16) coverage = %d; want 2", byTuple["11.0.0.0/16#7547"])
	}
	// Ordering: coverage non-increasing.
	for i := 1; i < len(list.Targets); i++ {
		if list.Targets[i-1].Coverage < list.Targets[i].Coverage {
			t.Fatal("targets not sorted by descending coverage")
		}
	}
}

func TestProbeCost(t *testing.T) {
	hosts := scenario()
	m := probmodel.Build(probmodel.Config{Floor: -1, MinSupport: -1}, hosts)
	list := Build(m, hosts, 24, engine.Config{})
	if got := list.ProbeCost(1); got != 256 {
		t.Errorf("ProbeCost(1) = %d; want 256 for one /24", got)
	}
	all := list.ProbeCost(-1)
	if all != uint64(len(list.Targets))*256 {
		t.Errorf("ProbeCost(-1) = %d", all)
	}
	if list.ProbeCost(1000000) != all {
		t.Error("ProbeCost beyond length must clamp")
	}
}

func TestStepSizeChangesTupleGranularity(t *testing.T) {
	hosts := scenario()
	m := probmodel.Build(probmodel.Config{Floor: -1, MinSupport: -1}, hosts)
	wide := Build(m, hosts, 8, engine.Config{})
	narrow := Build(m, hosts, 24, engine.Config{})
	// Narrow steps split the same services across more, smaller tuples.
	if len(narrow.Targets) < len(wide.Targets) {
		t.Errorf("/24 produced %d targets, /8 produced %d; narrow should be >=",
			len(narrow.Targets), len(wide.Targets))
	}
	if wide.ProbeCost(-1) <= narrow.ProbeCost(-1) {
		t.Error("wide steps must cost more probes than narrow steps")
	}
}

func TestDeterministicOrder(t *testing.T) {
	hosts := scenario()
	m := probmodel.Build(probmodel.Config{Floor: -1, MinSupport: -1}, hosts)
	a := Build(m, hosts, 16, engine.Config{Workers: 1})
	b := Build(m, hosts, 16, engine.Config{Workers: 8})
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("worker counts changed target count: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs between worker counts", i)
		}
	}
}

func itoa(v uint16) string {
	if v == 0 {
		return "0"
	}
	var buf [5]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
