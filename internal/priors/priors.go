// Package priors implements GPS's third phase (§5.3): predicting the
// *first* service on every responsive host. Only network-layer information
// is available for hosts outside the seed set, so GPS extrapolates each
// seed service to its surrounding subnetwork: it selects, per seed host,
// the single most predictive service (the one whose features best predict
// the host's remaining services), groups the resulting (port, subnet)
// tuples, and orders them by how many seed services they help predict.
// Exhaustively scanning that ordered "priors scan list" finds the anchor
// service on each host that phase four uses to predict everything else.
package priors

import (
	"sort"
	"sync"

	"gps/internal/asndb"
	"gps/internal/dataset"
	"gps/internal/engine"
	"gps/internal/probmodel"
)

// Target is one entry of the priors scan list: exhaustively scan Subnet on
// Port. Coverage is how many seed services this tuple helps predict — the
// list is ordered by it (maximal coverage first).
type Target struct {
	Port     uint16
	Subnet   asndb.Prefix
	Coverage int
}

// List is the ordered priors scan list.
type List struct {
	Targets []Target
	// StepBits is the subnet size used ("scanning step size"); /0 means
	// whole-space scans per port, /20 means small precise steps.
	StepBits uint8
}

// ProbeCost returns the number of probes needed to scan the first n
// targets (each costs one subnet's worth of addresses). n < 0 means all.
func (l List) ProbeCost(n int) uint64 {
	if n < 0 || n > len(l.Targets) {
		n = len(l.Targets)
	}
	var total uint64
	for i := 0; i < n; i++ {
		total += l.Targets[i].Subnet.Size()
	}
	return total
}

// tupleKey groups targets during construction.
type tupleKey struct {
	port   uint16
	subnet asndb.Prefix
}

// Build runs the §5.3 algorithm over the seed hosts:
//
//  1. Hosts with one service contribute (their port, their subnet).
//  2. Hosts with several services contribute, for every service A, the
//     port B whose condition maximizes P(A) — the anchor service.
//  3. Tuples are grouped and ranked by the number of seed services they
//     help predict.
func Build(m *probmodel.Model, hosts []dataset.HostGroup, stepBits uint8, cfg engine.Config) List {
	workers := cfg.Resolve()
	locals := make([]map[tupleKey]int, workers)
	var mu sync.Mutex
	next := 0
	engine.ParallelFor(cfg, len(hosts), func(lo, hi int) {
		mu.Lock()
		slot := next
		next++
		mu.Unlock()
		counts := make(map[tupleKey]int)
		for _, h := range hosts[lo:hi] {
			subnet := asndb.SubnetOf(h.IP, stepBits)
			if len(h.Records) == 1 {
				// The sole service is the first and only service
				// that must be found (§5.3 step 1).
				counts[tupleKey{port: h.Records[0].Port, subnet: subnet}]++
				continue
			}
			for _, ra := range h.Records {
				best, _, ok := m.BestCondForHost(h, ra.Port)
				if !ok {
					// No pattern reaches the floor; the service
					// must anchor itself.
					counts[tupleKey{port: ra.Port, subnet: subnet}]++
					continue
				}
				counts[tupleKey{port: best.Port, subnet: subnet}]++
			}
		}
		locals[slot] = counts
	})

	merged := make(map[tupleKey]int)
	for _, lm := range locals {
		for k, v := range lm {
			merged[k] += v
		}
	}
	targets := make([]Target, 0, len(merged))
	for k, v := range merged {
		targets = append(targets, Target{Port: k.port, Subnet: k.subnet, Coverage: v})
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].Coverage != targets[j].Coverage {
			return targets[i].Coverage > targets[j].Coverage
		}
		if targets[i].Port != targets[j].Port {
			return targets[i].Port < targets[j].Port
		}
		return targets[i].Subnet.Addr < targets[j].Subnet.Addr
	})
	return List{Targets: targets, StepBits: stepBits}
}
