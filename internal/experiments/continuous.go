package experiments

import (
	"fmt"

	"gps/internal/continuous"
	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
	"gps/internal/pipeline"
)

// ContinuousPoint is one epoch of the continuous-scanning experiment.
type ContinuousPoint struct {
	Epoch int
	// Coverage is the fraction of the *current* (churned) universe's
	// ground truth present and fresh in the inventory — the metric a
	// one-shot scan loses ~1% of per day (§3).
	Coverage float64
	// Known is the inventory size after the epoch.
	Known int
	// AliveFrac is the re-verification survival rate; StaleRate the
	// share of the inventory carrying a stale mark.
	AliveFrac, StaleRate float64
	// Probes is the epoch's bandwidth.
	Probes uint64
}

// ContinuousResult is the coverage-vs-epoch series of a continuous scan
// against a churning universe.
type ContinuousResult struct {
	Points []ContinuousPoint
	// BudgetScans is the per-epoch budget in 100%-scan units.
	BudgetScans float64
}

// ContinuousEpochs is the default epoch count of the experiment.
const ContinuousEpochs = 8

// Continuous runs the continuous-scanning subsystem for the given number
// of epochs under DefaultChurn and measures, after every epoch, how much
// of the *current* universe the inventory still covers. A batch scanner's
// coverage of the current universe only decays; the continuous scanner's
// re-verify + re-train + discover loop holds it steady.
func Continuous(s *Setup, epochs int) *ContinuousResult {
	space := s.Universe.SpaceSize()
	seedSet, _ := SplitEval(s.LZR, s.Scale.SeedMid, true, 61)
	cfg := continuous.Config{
		// A recurring budget of 20 one-port passes per epoch: roughly
		// what the first full discovery needs, and 3000x less than one
		// exhaustive all-port scan.
		Budget:   20 * space,
		Pipeline: pipeline.Config{Seed: 61},
	}
	r := continuous.New(seedSet, cfg)
	res := &ContinuousResult{BudgetScans: 20}

	world := s.Universe
	for e := 1; e <= epochs; e++ {
		world = netmodel.Churn(world, netmodel.DefaultChurn(s.Scale.Params.Seed+int64(e)))
		stats, err := r.Epoch(world)
		if err != nil {
			panic(err)
		}
		truth := dataset.SnapshotCensys(world, s.Scale.CensysPorts)
		found := 0
		for _, rec := range truth.Records {
			if ent, ok := r.State().Known[rec.Key()]; ok && ent.Stale == 0 {
				found++
			}
		}
		p := ContinuousPoint{
			Epoch:     e,
			Known:     stats.KnownSize,
			AliveFrac: stats.Freshness.AliveFrac(),
			StaleRate: stats.Freshness.StaleRate(),
			Probes:    stats.Probes(),
		}
		if truth.NumServices() > 0 {
			p.Coverage = float64(found) / float64(truth.NumServices())
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// Curve converts the series into a coverage-vs-bandwidth curve (FracAll =
// coverage of the then-current universe, probes cumulative across epochs)
// so it can be exported like the figure series.
func (r *ContinuousResult) Curve(space uint64) metrics.Curve {
	var c metrics.Curve
	var probes uint64
	for _, p := range r.Points {
		probes += p.Probes
		pt := metrics.Point{Probes: probes, Found: p.Known, FracAll: p.Coverage}
		if space > 0 {
			pt.ScansUnits = float64(probes) / float64(space)
		}
		c = append(c, pt)
	}
	return c
}

// Table renders the per-epoch series.
func (r *ContinuousResult) Table() Table {
	t := Table{
		Title:  "Continuous scanning: coverage of the churning universe per epoch",
		Header: []string{"epoch", "coverage", "known", "alive-frac", "stale-rate", "probes"},
		Notes: []string{
			fmt.Sprintf("per-epoch budget: %.0f one-port passes; churn per epoch: DefaultChurn (~9%%/10d of §3)", r.BudgetScans),
			"coverage is measured against the *current* universe each epoch: a batch scan's coverage here only decays",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Epoch),
			fmtPct(p.Coverage),
			fmt.Sprintf("%d", p.Known),
			fmtPct(p.AliveFrac),
			fmtPct(p.StaleRate),
			fmt.Sprintf("%d", p.Probes),
		})
	}
	return t
}
