package experiments

import (
	"fmt"

	"gps"
	"gps/internal/baselines/exhaustive"
	"gps/internal/metrics"
)

// Fig5Result carries the step-size sweep of Figure 5 / Appendix D.1.
type Fig5Result struct {
	// Curves maps each step size (prefix bits; 0 = /0) to GPS's
	// normalized-coverage curve.
	Steps      []uint8
	Curves     []metrics.Curve
	Exhaustive metrics.Curve
}

// Figure5 sweeps the scanning step size on the Censys-style dataset. The
// paper's finding: smaller steps (longer prefixes) save bandwidth early
// but plateau at lower coverage; larger steps find more services at much
// higher cost.
func Figure5(s *Setup, steps []uint8) *Fig5Result {
	if steps == nil {
		steps = []uint8{0, 4, 8, 12, 16, 20}
	}
	seedSet, testSet := SplitEval(s.Censys, s.Scale.SeedMid, false, 21)
	space := s.Universe.SpaceSize()
	out := &Fig5Result{Steps: steps, Exhaustive: exhaustive.Curve(testSet, space)}
	for _, bits := range steps {
		cfg := gps.Config{StepBits: bits, Seed: 21}
		if bits == 0 {
			cfg.StepZero = true
		}
		res, err := gps.Run(s.Universe, seedSet, cfg)
		if err != nil {
			panic(err)
		}
		out.Curves = append(out.Curves, GPSCurve(res, testSet, space, s.Scale.CurvePoints, false))
	}
	return out
}

// Figure returns the renderable form.
func (r *Fig5Result) Figure() Figure {
	ysel := func(p metrics.Point) float64 { return p.FracNorm }
	f := Figure{
		Title:  "Figure 5: varying scanning step size (Censys)",
		XLabel: "fraction of normalized services found -> bandwidth",
		YLabel: "bandwidth (100% scans) to reach coverage",
	}
	for i, bits := range r.Steps {
		f.Series = append(f.Series, Series{
			Name:  fmt.Sprintf("/%d step", bits),
			Curve: r.Curves[i],
			Y:     ysel,
		})
	}
	f.Series = append(f.Series, Series{Name: "exhaustive", Curve: r.Exhaustive, Y: ysel})
	return f
}

// Fig6Result carries the seed-size sweep of Figure 6 / Appendix D.2. The
// curves include seed collection bandwidth, as the paper's Figure 6 does.
type Fig6Result struct {
	SeedFractions []float64
	Curves        []metrics.Curve
	Exhaustive    metrics.Curve
	// FinalNorm/FinalAll record terminal coverage per seed size.
	FinalNorm []float64
	FinalAll  []float64
}

// Figure6 sweeps the seed size on the Censys-style dataset. The paper's
// finding: larger seeds lift normalized coverage (rare patterns need more
// samples) but barely move overall coverage.
func Figure6(s *Setup, fractions []float64) *Fig6Result {
	if fractions == nil {
		fractions = []float64{s.Scale.SeedTiny, s.Scale.SeedSmall, s.Scale.SeedMid, s.Scale.SeedLarge}
	}
	space := s.Universe.SpaceSize()
	out := &Fig6Result{SeedFractions: fractions}
	for _, frac := range fractions {
		seedSet, testSet := SplitEval(s.Censys, frac, false, 23)
		// Seed collection cost: a fresh random sample scan across the
		// dataset's ports (Censys-style seeds only scan those ports).
		seedSet.CollectionProbes = uint64(frac * float64(space) * float64(len(s.Censys.Ports)))
		res, err := gps.Run(s.Universe, seedSet, gps.Config{StepBits: 16, Seed: 23})
		if err != nil {
			panic(err)
		}
		c := GPSCurve(res, testSet, space, s.Scale.CurvePoints, true)
		out.Curves = append(out.Curves, c)
		out.FinalNorm = append(out.FinalNorm, c.Final().FracNorm)
		out.FinalAll = append(out.FinalAll, c.Final().FracAll)
		if out.Exhaustive == nil {
			out.Exhaustive = exhaustive.Curve(testSet, space)
		}
	}
	return out
}

// Figures returns the two renderable panels (normalized, all).
func (r *Fig6Result) Figures() []Figure {
	norm := Figure{
		Title:  "Figure 6a: varying seed size, normalized service discovery (Censys)",
		XLabel: "bandwidth incl. seed collection (# of 100% scans)",
		YLabel: "fraction of normalized services",
	}
	all := Figure{
		Title:  "Figure 6b: varying seed size, service discovery (Censys)",
		XLabel: "bandwidth incl. seed collection (# of 100% scans)",
		YLabel: "fraction of services",
	}
	for i, frac := range r.SeedFractions {
		name := fmt.Sprintf("seed %.2f%%", 100*frac)
		norm.Series = append(norm.Series, Series{Name: name, Curve: r.Curves[i],
			Y: func(p metrics.Point) float64 { return p.FracNorm }})
		all.Series = append(all.Series, Series{Name: name, Curve: r.Curves[i],
			Y: func(p metrics.Point) float64 { return p.FracAll }})
	}
	ex := Series{Name: "exhaustive", Curve: r.Exhaustive,
		Y: func(p metrics.Point) float64 { return p.FracNorm }}
	norm.Series = append(norm.Series, ex)
	return []Figure{norm, all}
}
