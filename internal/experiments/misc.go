package experiments

import (
	"fmt"

	"gps"
	"gps/internal/asndb"
	"gps/internal/baselines/exhaustive"
	"gps/internal/baselines/recommender"
	"gps/internal/baselines/tga"
	"gps/internal/dataset"
	"gps/internal/lzr"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// TGAResult wraps the §2 target-generation-algorithm experiment.
type TGAResult struct {
	TGA *tga.Result
}

// TGAExperiment reproduces §2's TGA evaluation: per-port Entropy/IP-style
// models trained on sampled addresses, generating an order of magnitude
// more candidates than responsive IPs. The paper measures only ~19% of
// services found.
func TGAExperiment(s *Setup) *TGAResult {
	seedSet, testSet := SplitEval(s.Censys, s.Scale.SeedMid, false, 41)
	res := tga.Run(s.Universe, seedSet, testSet, tga.Config{
		CandidatesPerPort: int(float64(s.Universe.SpaceSize()) / 50),
		MinTrainIPs:       8,
		Seed:              41,
	})
	return &TGAResult{TGA: res}
}

// Table renders the result.
func (r *TGAResult) Table() Table {
	return Table{
		Title:  "Section 2: TGA (Entropy/IP-style) baseline",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"ports trained", fmt.Sprintf("%d", r.TGA.PortsTrained)},
			{"ports skipped (too little data)", fmt.Sprintf("%d", r.TGA.PortsSkipped)},
			{"probes", fmt.Sprintf("%d", r.TGA.Probes)},
			{"fraction of services found", fmtPct(r.TGA.FracAll)},
			{"fraction of normalized services", fmtPct(r.TGA.FracNorm)},
		},
		Notes: []string{"paper: Entropy/IP+EIP find only 19% of services in the Censys dataset"},
	}
}

// RecommenderResult wraps the Appendix A experiment.
type RecommenderResult struct {
	Rec *recommender.Result
}

// RecommenderExperiment reproduces Appendix A: a LightFM-style hybrid
// recommender trained on the LZR-style dataset predicting 100 ports per
// test IP. The paper measures at most 47% of services and 1.5% of
// normalized services.
func RecommenderExperiment(s *Setup) *RecommenderResult {
	seedSet, testSet := SplitEval(s.LZR, s.Scale.SeedMid, true, 43)
	cfg := recommender.DefaultConfig(43)
	// The paper recommends 100 of 65K ports (~0.15% of the vocabulary).
	// Scale TopK to this universe's port vocabulary so the recommender
	// cannot trivially cover it.
	nPorts := 0
	for _, c := range seedSet.PortPopulation() {
		if c > 0 {
			nPorts++
		}
	}
	cfg.TopK = max(2, nPorts/20)
	m := recommender.Train(seedSet, cfg)
	return &RecommenderResult{Rec: recommender.Evaluate(m, testSet)}
}

// Table renders the result.
func (r *RecommenderResult) Table() Table {
	return Table{
		Title:  "Appendix A: hybrid recommender baseline",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"probes (100 recommendations/IP)", fmt.Sprintf("%d", r.Rec.Probes)},
			{"fraction of services found", fmtPct(r.Rec.FracAll)},
			{"fraction of normalized services", fmtPct(r.Rec.FracNorm)},
		},
		Notes: []string{"paper: at most 47% of services and 1.5% of normalized services"},
	}
}

// AppendixBResult evaluates the pseudo-service host filter.
type AppendixBResult struct {
	PseudoHosts   int
	RealHosts     int
	Filtered      int
	TruePositives int
	Recall        float64
	Precision     float64
}

// AppendixB measures the ">10 services per host" pseudo-service filter
// against the universe's labeled pseudo hosts. The paper reports 100%
// recall and 99% precision.
func AppendixB(s *Setup) *AppendixBResult {
	res := &AppendixBResult{}
	for _, h := range s.Universe.Hosts() {
		if h.Middlebox {
			continue
		}
		_, _, isPseudo := h.PseudoBlock()
		if isPseudo {
			res.PseudoHosts++
		} else {
			res.RealHosts++
		}
		if lzr.IsPseudoHost(h) {
			res.Filtered++
			if isPseudo {
				res.TruePositives++
			}
		}
	}
	if res.PseudoHosts > 0 {
		res.Recall = float64(res.TruePositives) / float64(res.PseudoHosts)
	}
	if res.Filtered > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.Filtered)
	}
	return res
}

// Table renders the result.
func (r *AppendixBResult) Table() Table {
	return Table{
		Title:  "Appendix B: pseudo-service host filter (>10 services per host)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"pseudo-service hosts", fmt.Sprintf("%d", r.PseudoHosts)},
			{"real hosts", fmt.Sprintf("%d", r.RealHosts)},
			{"hosts filtered", fmt.Sprintf("%d", r.Filtered)},
			{"recall", fmtPct(r.Recall)},
			{"precision", fmtPct(r.Precision)},
		},
		Notes: []string{"paper: 100% recall, 99% precision"},
	}
}

// Section7Result carries the ideal-conditions upper bound experiment.
type Section7Result struct {
	// NormCoverage is the normalized coverage achievable under ideal
	// conditions (95% seed, /0 step, credit whole host on first touch).
	NormCoverage float64
	AllCoverage  float64
	Probes       uint64
	// ForwardedShare is the fraction of test services that are
	// port-forwarded (the fundamentally unpredictable population).
	ForwardedShare float64
}

// Section7Limits reproduces the §7 upper-bound experiment: a 95% seed, a
// /0 scanning step, and crediting every service on a host the moment any
// of its services is discovered. The paper finds ~80% of normalized
// services discoverable even under these ideal conditions — the rest are
// randomly configured (port-forwarded) and unpredictable in principle.
func Section7Limits(s *Setup) *Section7Result {
	// The all-port dataset, unfiltered: the unpredictable random-port
	// tail must stay in ground truth for the limit to be visible.
	seedSet, testSet := SplitEval(s.LZR, s.Scale.LZRFraction*0.95, false, 47)
	res, err := gps.Run(s.Universe, seedSet, gps.Config{StepZero: true, Seed: 47})
	if err != nil {
		panic(err)
	}
	gt := metrics.NewGroundTruth(testSet)
	tr := metrics.NewTracker(gt, s.Universe.SpaceSize())

	// Credit the whole host on first touch: assume feature correlations
	// are perfectly available and accurate.
	byIP := make(map[asndb.IP][]netmodel.Key)
	for _, r := range testSet.Records {
		byIP[r.IP] = append(byIP[r.IP], r.Key())
	}
	touched := make(map[asndb.IP]bool)
	tr.Snapshot()
	last := uint64(0)
	for _, d := range res.Discoveries {
		if d.Probes > last {
			tr.Spend(d.Probes - last)
			last = d.Probes
		}
		if touched[d.Key.IP] {
			continue
		}
		touched[d.Key.IP] = true
		for _, k := range byIP[d.Key.IP] {
			tr.Record(k)
		}
		tr.Snapshot()
	}
	if total := res.TotalScanProbes(); total > last {
		tr.Spend(total - last)
	}
	p := tr.Snapshot()

	// The paper's criterion: how much normalized coverage is reachable
	// while still spending less bandwidth than exhaustive scanning needs
	// for the same coverage. Beyond the crossover, prediction is no
	// cheaper than brute force — the fundamental limit.
	exCurve := exhaustive.Curve(testSet, s.Universe.SpaceSize())
	crossover := 0.0
	for _, pt := range tr.Curve() {
		exBW, ok := exCurve.BandwidthForNorm(pt.FracNorm)
		if ok && pt.Probes < exBW && pt.FracNorm > crossover {
			crossover = pt.FracNorm
		}
	}

	forwarded := 0
	for _, r := range testSet.Records {
		if svc, ok := s.Universe.ServiceAt(r.IP, r.Port); ok && svc.Forwarded {
			forwarded++
		}
	}
	out := &Section7Result{
		NormCoverage: crossover,
		AllCoverage:  p.FracAll,
		Probes:       res.TotalScanProbes(),
	}
	if testSet.NumServices() > 0 {
		out.ForwardedShare = float64(forwarded) / float64(testSet.NumServices())
	}
	return out
}

// Table renders the result.
func (r *Section7Result) Table() Table {
	return Table{
		Title:  "Section 7: ideal-conditions discovery limit",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"normalized coverage achievable below exhaustive cost", fmtPct(r.NormCoverage)},
			{"overall coverage (ideal)", fmtPct(r.AllCoverage)},
			{"probes", fmt.Sprintf("%d", r.Probes)},
			{"port-forwarded share of test services", fmtPct(r.ForwardedShare)},
		},
		Notes: []string{"paper: ~80% of normalized services discoverable under ideal conditions"},
	}
}

// ChurnResult carries the §3 service-churn measurement.
type ChurnResult struct {
	ServicesLost   float64
	NormalizedLost float64
}

// ChurnStudy reproduces §3's 10-day churn measurement: snapshot a sample,
// apply the churn model, and measure what fraction of services (and
// normalized services) disappeared. The paper measures 9% of services and
// 15% of normalized services lost.
func ChurnStudy(s *Setup) *ChurnResult {
	before := dataset.SnapshotLZR(s.Universe, s.Scale.LZRFraction, 51)
	after := netmodel.Churn(s.Universe, netmodel.DefaultChurn(51))

	lost := 0
	portTotal := make(map[uint16]int)
	portLost := make(map[uint16]int)
	for _, r := range before.Records {
		portTotal[r.Port]++
		if !after.Responsive(r.IP, r.Port) {
			lost++
			portLost[r.Port]++
		}
	}
	res := &ChurnResult{}
	if n := before.NumServices(); n > 0 {
		res.ServicesLost = float64(lost) / float64(n)
	}
	var acc float64
	for p, total := range portTotal {
		acc += float64(portLost[p]) / float64(total)
	}
	if len(portTotal) > 0 {
		res.NormalizedLost = acc / float64(len(portTotal))
	}
	return res
}

// Table renders the result.
func (r *ChurnResult) Table() Table {
	return Table{
		Title:  "Section 3: 10-day service churn",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"services lost", fmtPct(r.ServicesLost)},
			{"normalized services lost", fmtPct(r.NormalizedLost)},
		},
		Notes: []string{"paper: 9% of services, 15% of normalized services disappear in 10 days"},
	}
}

// Section4Result carries the predictive-feature foundation measurements.
type Section4Result struct {
	// CoOccurrence25 is the fraction of ports (with >=4 hosts) where at
	// least 25% of hosts respond on some same second port.
	CoOccurrence25 float64
	// SameSubnetShare is the fraction of services appearing at least
	// twice on the same (port, /16) pair.
	SameSubnetShare float64
	// UncommonSameSubnet is the same measure restricted to the least
	// popular half of ports.
	UncommonSameSubnet float64
}

// Section4Properties verifies the three §4 observations hold in the
// universe: port co-occurrence, and network clustering strong on popular
// ports but weak on uncommon ones.
func Section4Properties(s *Setup) *Section4Result {
	d := s.LZR
	hostPorts := make(map[asndb.IP][]uint16)
	for _, r := range d.Records {
		hostPorts[r.IP] = append(hostPorts[r.IP], r.Port)
	}
	// Port co-occurrence: for each port, the best second-port share.
	portHosts := make(map[uint16]int)
	pairHosts := make(map[uint32]int) // p<<16|q
	for _, ports := range hostPorts {
		for _, p := range ports {
			portHosts[p]++
			for _, q := range ports {
				if p != q {
					pairHosts[uint32(p)<<16|uint32(q)]++
				}
			}
		}
	}
	eligible, hit := 0, 0
	for p, n := range portHosts {
		if n < 4 {
			continue
		}
		eligible++
		for q := range portHosts {
			if q == p {
				continue
			}
			if float64(pairHosts[uint32(p)<<16|uint32(q)]) >= 0.25*float64(n) {
				hit++
				break
			}
		}
	}
	res := &Section4Result{}
	if eligible > 0 {
		res.CoOccurrence25 = float64(hit) / float64(eligible)
	}

	// Network clustering: services repeated on the same (port, /16).
	cluster := make(map[uint64]int) // subnet<<16 | port
	for _, r := range d.Records {
		sub := uint64(asndb.SubnetOf(r.IP, 16).Addr)
		cluster[sub<<16|uint64(r.Port)]++
	}
	repeated, total := 0, 0
	repeatedU, totalU := 0, 0
	// Median port popularity splits common from uncommon.
	medianCut := medianPortCount(portHosts)
	for _, r := range d.Records {
		sub := uint64(asndb.SubnetOf(r.IP, 16).Addr)
		c := cluster[sub<<16|uint64(r.Port)]
		total++
		if c >= 2 {
			repeated++
		}
		if portHosts[r.Port] <= medianCut {
			totalU++
			if c >= 2 {
				repeatedU++
			}
		}
	}
	if total > 0 {
		res.SameSubnetShare = float64(repeated) / float64(total)
	}
	if totalU > 0 {
		res.UncommonSameSubnet = float64(repeatedU) / float64(totalU)
	}
	return res
}

func medianPortCount(portHosts map[uint16]int) int {
	if len(portHosts) == 0 {
		return 0
	}
	counts := make([]int, 0, len(portHosts))
	for _, n := range portHosts {
		counts = append(counts, n)
	}
	// Simple selection: sort is fine at this size.
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0 && counts[j-1] > counts[j]; j-- {
			counts[j-1], counts[j] = counts[j], counts[j-1]
		}
	}
	return counts[len(counts)/2]
}

// Table renders the result.
func (r *Section4Result) Table() Table {
	return Table{
		Title:  "Section 4: foundations of predictive features",
		Header: []string{"property", "value"},
		Rows: [][]string{
			{"ports whose hosts share a second port (>=25% of hosts)", fmtPct(r.CoOccurrence25)},
			{"services repeated on same (port, /16)", fmtPct(r.SameSubnetShare)},
			{"same, uncommon half of ports", fmtPct(r.UncommonSameSubnet)},
		},
		Notes: []string{"paper: >=25% second-port share for every port; 81% of services repeat in-subnet; repetition collapses on uncommon ports"},
	}
}
