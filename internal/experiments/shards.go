package experiments

import (
	"bytes"
	"fmt"
	"time"

	"gps/internal/metrics"
	"gps/internal/pipeline"
	"gps/internal/shard"
)

// ShardsPoint is one shard count of the scale-out experiment.
type ShardsPoint struct {
	Shards int
	// Coverage is the merged run's fraction of the test ground truth —
	// identical across shard counts when partitioning preserves the
	// pipeline's discoveries.
	Coverage float64
	// Found is the merged inventory size.
	Found int
	// TotalProbes sums every shard's scan bandwidth (the global cost).
	TotalProbes uint64
	// MaxShardProbes is the bottleneck shard's bandwidth: the quantity
	// that shrinks ~linearly with the shard count and sets wall-clock
	// time on real hardware.
	MaxShardProbes uint64
	// Wall is the wall-clock time of the whole sharded run (all shards
	// concurrent), and Merge the cross-shard fold alone.
	Wall, Merge time.Duration
	// Identical reports whether the merged inventory is byte-identical
	// to the 1-shard baseline — the determinism contract.
	Identical bool
}

// ShardsResult is the scale-out analogue of Table 2: instead of one
// warehouse parallelizing the model computation, N shards partition the
// entire pipeline — scan included — and a cross-shard merge rebuilds the
// global inventory.
type ShardsResult struct {
	Points []ShardsPoint
}

// DefaultShardCounts is the sweep the shards experiment runs.
var DefaultShardCounts = []int{1, 2, 4, 8}

// ShardsExperiment runs one batch GPS pipeline at each shard count and
// measures coverage (must stay flat), per-shard bandwidth (must fall
// ~1/N), merge cost (must stay small), and whether the merged inventory
// reproduces the unsharded run byte for byte.
func ShardsExperiment(s *Setup, counts []int) *ShardsResult {
	if len(counts) == 0 {
		counts = DefaultShardCounts
	}
	seedSet, testSet := SplitEval(s.LZR, s.Scale.SeedMid, true, 55)
	gt := metrics.NewGroundTruth(testSet)
	cfg := pipeline.Config{Seed: 55}

	res := &ShardsResult{}
	// The determinism baseline is always a real 1-shard run, whatever
	// order (or subset) of counts the caller asked for; when counts
	// starts with 1 that run doubles as the first point.
	var baseline []byte
	if counts[0] != 1 {
		m1, err := shard.Run(s.Universe, seedSet, cfg, 1)
		if err != nil {
			panic(err)
		}
		var inv bytes.Buffer
		if err := m1.WriteInventory(&inv); err != nil {
			panic(err)
		}
		baseline = inv.Bytes()
	}
	for _, n := range counts {
		start := time.Now()
		m, err := shard.Run(s.Universe, seedSet, cfg, n)
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)

		var inv bytes.Buffer
		if err := m.WriteInventory(&inv); err != nil {
			panic(err)
		}
		if baseline == nil {
			baseline = inv.Bytes()
		}
		found := 0
		for k := range m.Found {
			if gt.Contains(k) {
				found++
			}
		}
		p := ShardsPoint{
			Shards:         n,
			Found:          len(m.Found),
			TotalProbes:    m.TotalScanProbes(),
			MaxShardProbes: m.MaxShardProbes,
			Wall:           wall,
			Merge:          m.MergeTime,
			Identical:      bytes.Equal(inv.Bytes(), baseline),
		}
		if gt.Total() > 0 {
			p.Coverage = float64(found) / float64(gt.Total())
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// Table renders the sweep.
func (r *ShardsResult) Table() Table {
	t := Table{
		Title: "Shard scale-out: one pipeline partitioned over N hash shards",
		Header: []string{"shards", "coverage", "found", "total-probes",
			"max-shard-probes", "wall", "merge", "identical"},
		Notes: []string{
			"max-shard-probes is the bottleneck shard's bandwidth: ~1/N of the unsharded scan",
			"identical: merged inventory byte-identical to the 1-shard run (determinism across partitioning)",
			"the paper's Table 2 parallelizes the model computation inside one warehouse; this sweep is the multi-node analogue",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmtPct(p.Coverage),
			fmt.Sprintf("%d", p.Found),
			fmt.Sprintf("%d", p.TotalProbes),
			fmt.Sprintf("%d", p.MaxShardProbes),
			p.Wall.Round(time.Millisecond).String(),
			p.Merge.Round(time.Microsecond).String(),
			fmt.Sprintf("%v", p.Identical),
		})
	}
	return t
}
