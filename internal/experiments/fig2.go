package experiments

import (
	"fmt"

	"gps"
	"gps/internal/baselines/exhaustive"
	"gps/internal/dataset"
	"gps/internal/metrics"
)

// Fig2Variant selects one of Figure 2's four panels.
type Fig2Variant struct {
	// Censys selects the Censys-style dataset (panels a/c); otherwise
	// the LZR-style all-port dataset (panels b/d).
	Censys bool
	// Normalized plots Equation 2 (panels c/d) instead of Equation 1.
	Normalized bool
}

// PanelName returns the paper's panel label.
func (v Fig2Variant) PanelName() string {
	switch {
	case v.Censys && !v.Normalized:
		return "2a"
	case !v.Censys && !v.Normalized:
		return "2b"
	case v.Censys && v.Normalized:
		return "2c"
	default:
		return "2d"
	}
}

// Fig2Result carries the three curves of one panel.
type Fig2Result struct {
	Variant    Fig2Variant
	GPS        metrics.Curve
	Exhaustive metrics.Curve
	Oracle     metrics.Curve
	// FinalGPS is GPS's terminal coverage on the panel's metric.
	FinalGPS float64
	// SavingsAtFinal is how many times less bandwidth GPS used than
	// optimal port-order probing to reach its own final coverage.
	SavingsAtFinal float64
}

// Figure2 reproduces one panel of Figure 2: GPS vs exhaustive optimal
// port-order probing vs the oracle, as coverage-vs-bandwidth curves.
func Figure2(s *Setup, v Fig2Variant) *Fig2Result {
	var seedSet, testSet *dataset.Dataset
	var cfg gps.Config
	if v.Censys {
		seedSet, testSet = SplitEval(s.Censys, s.Scale.SeedLarge, false, 7)
		cfg = gps.Config{StepBits: 16, Seed: 7}
	} else {
		seedSet, testSet = SplitEval(s.LZR, s.Scale.SeedSmall, true, 7)
		cfg = gps.Config{StepBits: 16, Seed: 7}
	}
	res, err := gps.Run(s.Universe, seedSet, cfg)
	if err != nil {
		panic(err)
	}
	space := s.Universe.SpaceSize()
	out := &Fig2Result{
		Variant:    v,
		GPS:        GPSCurve(res, testSet, space, s.Scale.CurvePoints, false),
		Exhaustive: exhaustive.Curve(testSet, space),
		Oracle:     exhaustive.OracleCurve(testSet, space, s.Scale.CurvePoints),
	}
	final := out.GPS.Final()
	if v.Normalized {
		out.FinalGPS = final.FracNorm
		if bw, ok := out.Exhaustive.BandwidthForNorm(out.FinalGPS); ok && final.Probes > 0 {
			out.SavingsAtFinal = float64(bw) / float64(final.Probes)
		}
	} else {
		out.FinalGPS = final.FracAll
		if bw, ok := out.Exhaustive.BandwidthFor(out.FinalGPS); ok && final.Probes > 0 {
			out.SavingsAtFinal = float64(bw) / float64(final.Probes)
		}
	}
	return out
}

// Figure returns the renderable form.
func (r *Fig2Result) Figure() Figure {
	yl := "fraction of services (Eq. 1)"
	ysel := func(p metrics.Point) float64 { return p.FracAll }
	if r.Variant.Normalized {
		yl = "fraction of normalized services (Eq. 2)"
		ysel = func(p metrics.Point) float64 { return p.FracNorm }
	}
	return Figure{
		Title:  "Figure " + r.Variant.PanelName() + ": service discovery vs bandwidth",
		XLabel: "bandwidth (# of 100% scans)",
		YLabel: yl,
		Series: []Series{
			{Name: "GPS", Curve: r.GPS, Y: ysel},
			{Name: "exhaustive, optimal order", Curve: r.Exhaustive, Y: ysel},
			{Name: "oracle", Curve: r.Oracle, Y: ysel},
		},
		Notes: []string{
			fmt.Sprintf("GPS final coverage %s using %.1fx less bandwidth than optimal port-order probing",
				fmtPct(r.FinalGPS), r.SavingsAtFinal),
		},
	}
}
