package experiments

import (
	"sync"
	"testing"
)

// sharedSetup builds the small-scale setup once per test binary; the
// experiments are read-only against it.
var (
	setupOnce sync.Once
	setupVal  *Setup
)

func testSetup(t *testing.T) *Setup {
	t.Helper()
	setupOnce.Do(func() { setupVal = NewSetup(SmallScale(99)) })
	return setupVal
}

func TestFigure2Panels(t *testing.T) {
	s := testSetup(t)
	for _, v := range []Fig2Variant{
		{Censys: true}, {Censys: false},
		{Censys: true, Normalized: true}, {Censys: false, Normalized: true},
	} {
		v := v
		t.Run(v.PanelName(), func(t *testing.T) {
			r := Figure2(s, v)
			t.Log(r.Figure().Render())
			if r.FinalGPS < 0.3 {
				t.Errorf("GPS final coverage %.2f too low", r.FinalGPS)
			}
			if r.SavingsAtFinal < 1 {
				t.Errorf("GPS should beat optimal port-order probing; savings %.2fx", r.SavingsAtFinal)
			}
			// The oracle must lower-bound everyone's bandwidth.
			ob, okO := r.Oracle.BandwidthFor(r.FinalGPS * 0.9)
			gb, okG := r.GPS.BandwidthFor(r.FinalGPS * 0.9)
			if okO && okG && ob > gb {
				t.Errorf("oracle used more bandwidth (%d) than GPS (%d)", ob, gb)
			}
		})
	}
}

func TestFigure3Precision(t *testing.T) {
	s := testSetup(t)
	r := Figure3(s)
	t.Log(r.Figure().Render())
	if r.PrecisionRatioMid < 5 {
		t.Errorf("GPS precision advantage %.1fx; want order(s) of magnitude", r.PrecisionRatioMid)
	}
}

func TestFigure4XGBoost(t *testing.T) {
	s := testSetup(t)
	r := Figure4(s)
	for _, tb := range r.Tables(s.Universe.SpaceSize()) {
		t.Log(tb.Render())
	}
	t.Log(r.FigureC().Render())
	if r.AvgPriorSavings < 1 {
		t.Errorf("GPS prior-bandwidth savings %.2fx; paper reports 5.7x average", r.AvgPriorSavings)
	}
	if len(r.Ports) == 0 {
		t.Fatal("no per-port results")
	}
}

func TestFigure5StepSize(t *testing.T) {
	s := testSetup(t)
	r := Figure5(s, []uint8{0, 12, 16, 20})
	t.Log(r.Figure().Render())
	// Smaller steps (longer prefixes) must not use more bandwidth than
	// /0 whole-space scanning at the priors stage; and /0 should reach
	// at least as much normalized coverage as /20.
	cov0 := r.Curves[0].Final().FracNorm
	cov20 := r.Curves[len(r.Curves)-1].Final().FracNorm
	if cov0+1e-9 < cov20 {
		t.Errorf("/0 step coverage %.3f below /20 step %.3f; larger steps should recall more", cov0, cov20)
	}
	bw0 := r.Curves[0].Final().Probes
	bw20 := r.Curves[len(r.Curves)-1].Final().Probes
	if bw20 > bw0 {
		t.Errorf("/20 step used more bandwidth (%d) than /0 (%d)", bw20, bw0)
	}
}

func TestFigure6SeedSize(t *testing.T) {
	s := testSetup(t)
	r := Figure6(s, nil)
	for _, f := range r.Figures() {
		t.Log(f.Render())
	}
	n := len(r.SeedFractions)
	if r.FinalNorm[n-1] < r.FinalNorm[0] {
		t.Errorf("largest seed %.3f norm coverage below smallest %.3f; larger seeds should find more normalized services",
			r.FinalNorm[n-1], r.FinalNorm[0])
	}
}

func TestTables(t *testing.T) {
	s := testSetup(t)
	t1 := Table1(s)
	t.Log(t1.Render())
	if len(t1.Rows) != 25 {
		t.Errorf("Table 1 has %d rows; want 25 features", len(t1.Rows))
	}
	t2 := Table2(s)
	t.Log(t2.Table(s.Universe.SpaceSize()).Render())
	if t2.SingleCore < t2.Parallel {
		t.Logf("warning: single-core compute (%v) faster than parallel (%v) at this scale", t2.SingleCore, t2.Parallel)
	}
	t3 := Table3(s)
	t.Log(t3.Table(5).Render())
	if len(t3.Rows) == 0 || t3.UniqueRules == 0 {
		t.Error("Table 3 found no predictive tuples")
	}
	t4 := Table4(s)
	t.Log(t4.Render())
	if len(t4.Rows) == 0 {
		t.Error("Table 4 empty")
	}
}

func TestBaselineExperiments(t *testing.T) {
	s := testSetup(t)
	tgaRes := TGAExperiment(s)
	t.Log(tgaRes.Table().Render())
	if tgaRes.TGA.FracAll > 0.6 {
		t.Errorf("TGA found %.2f of services; paper says TGAs perform poorly (~19%%)", tgaRes.TGA.FracAll)
	}
	rec := RecommenderExperiment(s)
	t.Log(rec.Table().Render())
	if rec.Rec.FracNorm > 0.3 {
		t.Errorf("recommender normalized coverage %.2f; paper reports ~1.5%%", rec.Rec.FracNorm)
	}
}

func TestMiscExperiments(t *testing.T) {
	s := testSetup(t)
	ab := AppendixB(s)
	t.Log(ab.Table().Render())
	if ab.Recall < 0.999 {
		t.Errorf("pseudo filter recall %.3f; paper reports 100%%", ab.Recall)
	}
	if ab.Precision < 0.9 {
		t.Errorf("pseudo filter precision %.3f; paper reports 99%%", ab.Precision)
	}

	s7 := Section7Limits(s)
	t.Log(s7.Table().Render())
	if s7.NormCoverage < 0.5 {
		t.Errorf("ideal-conditions normalized coverage %.2f; paper reports ~80%%", s7.NormCoverage)
	}

	ch := ChurnStudy(s)
	t.Log(ch.Table().Render())
	if ch.ServicesLost <= 0 || ch.ServicesLost > 0.3 {
		t.Errorf("service churn %.3f outside plausible range", ch.ServicesLost)
	}
	if ch.NormalizedLost < ch.ServicesLost {
		t.Errorf("normalized churn %.3f below overall churn %.3f; uncommon ports should churn faster",
			ch.NormalizedLost, ch.ServicesLost)
	}

	s4 := Section4Properties(s)
	t.Log(s4.Table().Render())
	if s4.CoOccurrence25 < 0.5 {
		t.Errorf("only %.2f of ports show 25%% second-port co-occurrence", s4.CoOccurrence25)
	}
	if s4.SameSubnetShare < s4.UncommonSameSubnet {
		t.Errorf("subnet clustering should weaken on uncommon ports (%.2f overall vs %.2f uncommon)",
			s4.SameSubnetShare, s4.UncommonSameSubnet)
	}
}

// TestContinuousTracksChurn is the acceptance check of the continuous
// subsystem: at least 5 churn epochs, with every epoch's coverage of the
// then-current universe within 20% of epoch 1's — the inventory tracks
// churn instead of decaying the way a batch snapshot does.
func TestContinuousTracksChurn(t *testing.T) {
	s := testSetup(t)
	r := Continuous(s, 6)
	t.Log(r.Table().Render())
	if len(r.Points) != 6 {
		t.Fatalf("got %d epochs; want 6", len(r.Points))
	}
	first := r.Points[0].Coverage
	if first < 0.3 {
		t.Fatalf("epoch-1 coverage %.2f too low to mean anything", first)
	}
	for _, p := range r.Points {
		if diff := p.Coverage - first; diff < -0.2*first || diff > 0.2*first {
			t.Errorf("epoch %d coverage %.3f drifted more than 20%% from epoch-1 %.3f",
				p.Epoch, p.Coverage, first)
		}
		if p.Probes == 0 || p.Known == 0 {
			t.Errorf("epoch %d: empty epoch (probes=%d known=%d)", p.Epoch, p.Probes, p.Known)
		}
	}
	// The inventory must actually turn over: the churning universe keeps
	// shrinking, so the known set at the end must be smaller than at the
	// start while coverage holds.
	if last := r.Points[len(r.Points)-1]; last.Known >= r.Points[0].Known {
		t.Errorf("known set grew from %d to %d against a shrinking universe",
			r.Points[0].Known, last.Known)
	}
}

func TestShardsExperiment(t *testing.T) {
	s := testSetup(t)
	r := ShardsExperiment(s, []int{1, 2, 4})
	t.Log(r.Table().Render())
	if len(r.Points) != 3 {
		t.Fatalf("got %d points; want 3", len(r.Points))
	}
	base := r.Points[0]
	if base.Coverage <= 0 || base.Found == 0 {
		t.Fatalf("1-shard baseline found nothing (coverage %.3f)", base.Coverage)
	}
	for _, p := range r.Points {
		// The acceptance contract: the N-shard merged inventory is
		// byte-identical to the 1-shard run under a fixed seed, so
		// coverage is exactly flat across shard counts.
		if !p.Identical {
			t.Errorf("%d shards: merged inventory not byte-identical to the 1-shard run", p.Shards)
		}
		if p.Coverage != base.Coverage || p.Found != base.Found {
			t.Errorf("%d shards: coverage %.4f found %d; 1-shard run had %.4f/%d",
				p.Shards, p.Coverage, p.Found, base.Coverage, base.Found)
		}
		if p.TotalProbes != base.TotalProbes {
			t.Errorf("%d shards: total probes %d; want %d", p.Shards, p.TotalProbes, base.TotalProbes)
		}
		// Per-shard work must scale down: the bottleneck shard's
		// bandwidth stays within 50% of the ideal 1/N share.
		ideal := base.TotalProbes / uint64(p.Shards)
		if p.MaxShardProbes > ideal+ideal/2 {
			t.Errorf("%d shards: bottleneck shard spent %d probes; ideal share is %d",
				p.Shards, p.MaxShardProbes, ideal)
		}
	}
}

// TestShardsExperimentBaselineIsOneShard: when the sweep does not start
// at one shard, the determinism check must still compare against a real
// 1-shard run rather than the first sweep entry.
func TestShardsExperimentBaselineIsOneShard(t *testing.T) {
	s := testSetup(t)
	r := ShardsExperiment(s, []int{2})
	if len(r.Points) != 1 || r.Points[0].Shards != 2 {
		t.Fatalf("unexpected points %+v", r.Points)
	}
	if !r.Points[0].Identical {
		t.Error("2-shard inventory not byte-identical to the implicit 1-shard baseline")
	}
}
