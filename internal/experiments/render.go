package experiments

import (
	"fmt"
	"strings"

	"gps/internal/metrics"
)

// Table is a renderable rows-and-columns result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Figure is a renderable set of named curves (one table row per sample).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Series is one named curve.
type Series struct {
	Name  string
	Curve metrics.Curve
	// Y selects which metric of each point is the y value; nil plots
	// FracAll.
	Y func(metrics.Point) float64
}

func (s Series) y(p metrics.Point) float64 {
	if s.Y != nil {
		return s.Y(p)
	}
	return p.FracAll
}

// Render formats each series as "x y" pairs plus summary statistics.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s (%d points)\n", s.Name, len(s.Curve))
		step := len(s.Curve)/12 + 1
		for i := 0; i < len(s.Curve); i += step {
			p := s.Curve[i]
			fmt.Fprintf(&b, "   %12.4f  %.4f\n", p.ScansUnits, s.y(p))
		}
		if n := len(s.Curve); n > 0 && (n-1)%step != 0 {
			p := s.Curve[n-1]
			fmt.Fprintf(&b, "   %12.4f  %.4f\n", p.ScansUnits, s.y(p))
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
func fmtPct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
