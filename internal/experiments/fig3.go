package experiments

import (
	"fmt"

	"gps"
	"gps/internal/baselines/exhaustive"
	"gps/internal/metrics"
)

// Fig3Result carries the precision curves of Figure 3: GPS configured for
// maximum precision (/20 step) vs exhaustive optimal-order probing.
type Fig3Result struct {
	GPS        metrics.Curve
	Exhaustive metrics.Curve
	// PrecisionRatioMid is GPS's precision advantage at the midpoint of
	// its coverage (the paper reports 204x at the 94th percentile).
	PrecisionRatioMid float64
}

// Figure3 reproduces Figure 3: precision as a function of the fraction of
// services found, Censys-style dataset, mid seed, /20 step size.
func Figure3(s *Setup) *Fig3Result {
	seedSet, testSet := SplitEval(s.Censys, s.Scale.SeedMid, false, 9)
	res, err := gps.Run(s.Universe, seedSet, gps.Config{StepBits: 20, Seed: 9})
	if err != nil {
		panic(err)
	}
	space := s.Universe.SpaceSize()
	out := &Fig3Result{
		GPS:        GPSCurve(res, testSet, space, s.Scale.CurvePoints, false),
		Exhaustive: exhaustive.Curve(testSet, space),
	}
	mid := out.GPS.Final().FracAll * 0.5
	gp, okG := out.GPS.PrecisionAt(mid)
	ep, okE := out.Exhaustive.PrecisionAt(mid)
	if okG && okE && ep > 0 {
		out.PrecisionRatioMid = gp / ep
	}
	return out
}

// Figure returns the renderable form.
func (r *Fig3Result) Figure() Figure {
	ysel := func(p metrics.Point) float64 { return p.Precision }
	return Figure{
		Title:  "Figure 3: precision vs fraction of services found",
		XLabel: "bandwidth (# of 100% scans; precision plotted against it)",
		YLabel: "precision (ground-truth services per probe)",
		Series: []Series{
			{Name: "GPS", Curve: r.GPS, Y: ysel},
			{Name: "exhaustive, optimal order", Curve: r.Exhaustive, Y: ysel},
		},
		Notes: []string{
			fmt.Sprintf("GPS is %.0fx more precise than exhaustive probing near its terminal coverage", r.PrecisionRatioMid),
		},
	}
}
