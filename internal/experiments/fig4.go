package experiments

import (
	"fmt"
	"sort"

	"gps"
	"gps/internal/asndb"
	"gps/internal/baselines/exhaustive"
	"gps/internal/baselines/xgboost"
	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/probmodel"
)

// Fig4Port is one port's bandwidth accounting for Figures 4a/4b.
type Fig4Port struct {
	Port uint16
	// GPSPriorProbes / XGBPriorProbes: bandwidth to collect the minimum
	// set of predictive services (Figure 4a).
	GPSPriorProbes uint64
	XGBPriorProbes uint64
	// GPSScanProbes / XGBScanProbes: bandwidth to scan the remaining
	// services at matched coverage (Figure 4b).
	GPSScanProbes uint64
	XGBScanProbes uint64
	// Coverage is the matched per-port coverage level (GPS's achieved).
	Coverage float64
}

// Fig4Result carries all three panels.
type Fig4Result struct {
	Ports []Fig4Port
	// Curves for Figure 4c: normalized service discovery over the
	// evaluated ports.
	GPSCurve   metrics.Curve
	XGBCurve   metrics.Curve
	Exhaustive metrics.Curve
	// AvgPriorSavings is GPS's mean prior-bandwidth advantage (paper:
	// 5.7x average, 28x best).
	AvgPriorSavings  float64
	BestPriorSavings float64
}

// Figure4 reproduces §6.4: GPS vs the sequential XGBoost scanner on the
// popular-port workload, using a 0.5%-equivalent Censys seed and /16 step.
func Figure4(s *Setup) *Fig4Result {
	seq := xgboost.DefaultSequence
	seqSet := make(map[uint16]bool, len(seq))
	for _, p := range seq {
		seqSet[p] = true
	}

	seedSet, testSet := SplitEval(s.Censys, s.Scale.SeedSmall, false, 13)
	test19 := testSet.FilterPorts(seqSet)

	// GPS run over the full Censys seed; its per-port accounting is then
	// read off the result.
	res, err := gps.Run(s.Universe, seedSet, gps.Config{StepBits: 16, Seed: 13})
	if err != nil {
		panic(err)
	}
	space := s.Universe.SpaceSize()

	gt := metrics.NewGroundTruth(test19)
	gpsFound := make(map[uint16]int)
	gpsScanProbes := make(map[uint16]uint64)
	for _, d := range res.Discoveries {
		if !seqSet[d.Key.Port] || !gt.Contains(d.Key) {
			continue
		}
		gpsFound[d.Key.Port]++
	}
	for _, p := range res.Predictions {
		if seqSet[p.Port] {
			gpsScanProbes[p.Port]++
		}
	}

	// GPS's minimum predictive set per port: the (anchor port, subnet)
	// tuples the priors algorithm selects for seed services on the port.
	gpsPrior := gpsPriorCostPerPort(res.Model, seedSet, seq, 16)

	// Matched coverage per port for the XGBoost run.
	covPerPort := make(map[uint16]float64, len(seq))
	for _, p := range seq {
		gtP := gt.PortCount(p)
		if gtP == 0 {
			covPerPort[p] = 0.99
			continue
		}
		c := float64(gpsFound[p]) / float64(gtP)
		if c > 0.999 {
			c = 0.999
		}
		if c < 0.5 {
			c = 0.5
		}
		covPerPort[p] = c
	}

	xgb := xgboost.RunSequential(s.Universe, seedSet, test19, xgboost.ScanConfig{
		Sequence:        seq,
		CoveragePerPort: covPerPort,
	})

	out := &Fig4Result{
		GPSCurve:   GPSCurve(res, test19, space, s.Scale.CurvePoints, false),
		XGBCurve:   xgb.Curve,
		Exhaustive: exhaustive.Curve(test19, space),
	}
	var savings []float64
	for i, p := range seq {
		fp := Fig4Port{
			Port:           p,
			GPSPriorProbes: gpsPrior[p],
			XGBPriorProbes: xgb.Ports[i].PriorProbes,
			GPSScanProbes:  gpsScanProbes[p],
			XGBScanProbes:  xgb.Ports[i].ScanProbes,
			Coverage:       covPerPort[p],
		}
		out.Ports = append(out.Ports, fp)
		if fp.GPSPriorProbes > 0 && fp.XGBPriorProbes > 0 {
			savings = append(savings, float64(fp.XGBPriorProbes)/float64(fp.GPSPriorProbes))
		}
	}
	if len(savings) > 0 {
		var sum, best float64
		for _, v := range savings {
			sum += v
			if v > best {
				best = v
			}
		}
		out.AvgPriorSavings = sum / float64(len(savings))
		out.BestPriorSavings = best
	}
	return out
}

// gpsPriorCostPerPort computes, for each target port, the bandwidth of
// scanning the unique (anchor port, subnet) tuples GPS needs before it can
// predict that port's services — the §5.3 algorithm restricted to seed
// services on the target port.
func gpsPriorCostPerPort(m *probmodel.Model, seedSet *dataset.Dataset, ports []uint16, stepBits uint8) map[uint16]uint64 {
	want := make(map[uint16]bool, len(ports))
	for _, p := range ports {
		want[p] = true
	}
	type tuple struct {
		port   uint16
		subnet asndb.Prefix
	}
	tuples := make(map[uint16]map[tuple]bool, len(ports))
	for _, p := range ports {
		tuples[p] = make(map[tuple]bool)
	}
	for _, h := range seedSet.ByHost() {
		subnet := asndb.SubnetOf(h.IP, stepBits)
		for _, ra := range h.Records {
			if !want[ra.Port] {
				continue
			}
			anchor := ra.Port
			if len(h.Records) > 1 {
				if best, _, ok := m.BestCondForHost(h, ra.Port); ok {
					anchor = best.Port
				}
			}
			tuples[ra.Port][tuple{port: anchor, subnet: subnet}] = true
		}
	}
	out := make(map[uint16]uint64, len(ports))
	for p, set := range tuples {
		var cost uint64
		for t := range set {
			cost += t.subnet.Size()
		}
		out[p] = cost
	}
	return out
}

// Tables returns the renderable 4a/4b tables.
func (r *Fig4Result) Tables(space uint64) []Table {
	sorted := make([]Fig4Port, len(r.Ports))
	copy(sorted, r.Ports)
	sort.Slice(sorted, func(i, j int) bool {
		ri := float64(sorted[i].XGBPriorProbes+1) / float64(sorted[i].GPSPriorProbes+1)
		rj := float64(sorted[j].XGBPriorProbes+1) / float64(sorted[j].GPSPriorProbes+1)
		return ri > rj
	})
	a := Table{
		Title:  "Figure 4a: bandwidth to scan minimum set of predictive services (in 100% scans)",
		Header: []string{"port", "XGBoost (sequential)", "GPS", "coverage"},
		Notes: []string{fmt.Sprintf("GPS saves %.1fx on average, %.1fx at best (paper: 5.7x avg, 28x best)",
			r.AvgPriorSavings, r.BestPriorSavings)},
	}
	b := Table{
		Title:  "Figure 4b: bandwidth to scan remaining services at matched coverage (in 100% scans)",
		Header: []string{"port", "XGBoost (sequential)", "GPS", "coverage"},
	}
	toScans := func(p uint64) string { return fmt.Sprintf("%.4f", float64(p)/float64(space)) }
	for _, fp := range sorted {
		port := fmt.Sprintf("%d", fp.Port)
		cov := fmtPct(fp.Coverage)
		a.Rows = append(a.Rows, []string{port, toScans(fp.XGBPriorProbes), toScans(fp.GPSPriorProbes), cov})
		b.Rows = append(b.Rows, []string{port, toScans(fp.XGBScanProbes), toScans(fp.GPSScanProbes), cov})
	}
	return []Table{a, b}
}

// FigureC returns the renderable Figure 4c.
func (r *Fig4Result) FigureC() Figure {
	ysel := func(p metrics.Point) float64 { return p.FracNorm }
	return Figure{
		Title:  "Figure 4c: normalized service discovery, GPS vs XGBoost vs exhaustive",
		XLabel: "bandwidth (# of 100% scans)",
		YLabel: "fraction of normalized services",
		Series: []Series{
			{Name: "GPS", Curve: r.GPSCurve, Y: ysel},
			{Name: "XGBoost (sequential)", Curve: r.XGBCurve, Y: ysel},
			{Name: "exhaustive, optimal order", Curve: r.Exhaustive, Y: ysel},
		},
	}
}
