// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, §7, Appendices) against the synthetic universe. Each
// experiment is a function returning a renderable result; the gpseval
// command and the repository's benchmarks drive them. Absolute numbers
// differ from the paper (the substrate is a synthetic Internet, not the
// 2021 IPv4 space) but each experiment asserts the paper's qualitative
// shape, and each rendered table's notes record the paper's values.
package experiments

import (
	"gps"
	"gps/internal/dataset"
	"gps/internal/metrics"
	"gps/internal/netmodel"
)

// Scale selects how large a universe the experiments run against.
type Scale struct {
	Name string
	// Params generates the universe.
	Params netmodel.Params
	// CensysPorts is how many top ports the Censys-style snapshot scans
	// (the paper's ~2K, scaled to the universe's port population).
	CensysPorts int
	// LZRFraction is the address sample of the LZR-style snapshot (the
	// paper's 1%). Scaled up because the synthetic universe is smaller.
	LZRFraction float64
	// SeedFractions used by the individual experiments, expressed as
	// fractions of the full address space (the paper's 2%, 1%, 0.5%,
	// 0.1%). Scaled up for the smaller universe so seeds hold enough
	// hosts to learn from.
	SeedLarge, SeedMid, SeedSmall, SeedTiny float64
	// CurvePoints is how many samples each coverage curve keeps.
	CurvePoints int
}

// SmallScale is sized for unit tests: sub-second experiments.
func SmallScale(seed int64) Scale {
	return Scale{
		Name:        "small",
		Params:      netmodel.TestParams(seed),
		CensysPorts: 200,
		LZRFraction: 0.30,
		SeedLarge:   0.08, SeedMid: 0.04, SeedSmall: 0.02, SeedTiny: 0.005,
		CurvePoints: 60,
	}
}

// DefaultScale is the benchmark size: a few seconds per experiment.
func DefaultScale(seed int64) Scale {
	return Scale{
		Name:        "default",
		Params:      netmodel.DefaultParams(seed),
		CensysPorts: 2000,
		LZRFraction: 0.10,
		SeedLarge:   0.02, SeedMid: 0.01, SeedSmall: 0.005, SeedTiny: 0.001,
		CurvePoints: 120,
	}
}

// Setup bundles a universe with the two ground-truth snapshots of §6.1.
type Setup struct {
	Scale    Scale
	Universe *netmodel.Universe
	// Censys is the Censys-style dataset: 100% scans of the top ports.
	Censys *dataset.Dataset
	// LZR is the LZR-style dataset: a random sample across all ports.
	LZR *dataset.Dataset
}

// NewSetup generates the universe and snapshots once; experiments share it.
func NewSetup(sc Scale) *Setup {
	u := netmodel.Generate(sc.Params)
	return &Setup{
		Scale:    sc,
		Universe: u,
		Censys:   dataset.SnapshotCensys(u, sc.CensysPorts),
		LZR:      dataset.SnapshotLZR(u, sc.LZRFraction, sc.Params.Seed^0x11),
	}
}

// SplitEval prepares a seed/test evaluation pair from a dataset following
// §6.1: split by IP, then (for all-port datasets) filter both sides to
// ports with more than two responsive seed IPs.
func SplitEval(d *dataset.Dataset, seedFraction float64, filterPorts bool, seed int64) (seedSet, testSet *dataset.Dataset) {
	seedSet, testSet = d.Split(seedFraction, seed)
	if filterPorts {
		eligible := seedSet.EligiblePorts(2)
		seedSet = seedSet.FilterPorts(eligible)
		testSet = testSet.FilterPorts(eligible)
	}
	return seedSet, testSet
}

// GPSCurve converts a GPS run's discovery log into a coverage curve
// against the test ground truth, sampled at `points` positions. When
// includeSeed is true the seed collection bandwidth is prepended (Figure 6
// includes it; Figure 2 does not).
func GPSCurve(res *gps.Result, testSet *dataset.Dataset, space uint64, points int, includeSeed bool) metrics.Curve {
	gt := metrics.NewGroundTruth(testSet)
	tr := metrics.NewTracker(gt, space)
	if includeSeed {
		tr.Spend(res.SeedProbes)
	}
	tr.Snapshot()
	if points < 1 {
		points = 1
	}
	step := len(res.Discoveries)/points + 1
	last := uint64(0)
	for i, d := range res.Discoveries {
		// Advance spend to the discovery's cumulative probe count.
		if d.Probes > last {
			tr.Spend(d.Probes - last)
			last = d.Probes
		}
		tr.Record(d.Key)
		if (i+1)%step == 0 || i == len(res.Discoveries)-1 {
			tr.Snapshot()
		}
	}
	// Account the full scan bandwidth even if the tail found nothing.
	total := res.TotalScanProbes()
	if total > last {
		tr.Spend(total - last)
	}
	tr.Snapshot()
	return tr.Curve()
}
