package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gps"
	"gps/internal/asndb"
	"gps/internal/engine"
	"gps/internal/features"
	"gps/internal/predict"
	"gps/internal/probmodel"
	"gps/internal/scanner"
	"gps/internal/store"
)

// Table1 reproduces the feature dimensionality census: the number of
// unique values each of GPS's 25 features takes in the Censys-style
// ground-truth dataset.
func Table1(s *Setup) Table {
	uniq := make(map[features.Key]map[string]bool)
	for _, k := range features.AllKeys() {
		uniq[k] = make(map[string]bool)
	}
	for _, r := range s.Censys.Records {
		for k, v := range r.Feats {
			uniq[k][v] = true
		}
		uniq[features.KeySubnet16][asndb.Subnet16(r.IP)] = true
		uniq[features.KeyASN][r.ASN.String()] = true
	}
	t := Table{
		Title:  "Table 1: GPS features and their dimensionality (Censys ground truth)",
		Header: []string{"feature", "# unique values"},
	}
	for _, k := range features.AllKeys() {
		t.Rows = append(t.Rows, []string{k.String(), fmt.Sprintf("%d", len(uniq[k]))})
	}
	return t
}

// Table2Result is the performance breakdown of Table 2: where GPS spends
// bandwidth, computation, and wall time, and how much the parallel engine
// buys over a single core.
type Table2Result struct {
	SeedProbes    uint64
	PriorsProbes  uint64
	PredictProbes uint64
	// SeedScanTime/PriorsScanTime/PredictScanTime are modeled wall times
	// at the paper's scan rates (1.5 Gb/s seed, 50 Mb/s prediction scans).
	SeedScanTime    time.Duration
	PriorsScanTime  time.Duration
	PredictScanTime time.Duration
	// SingleCore and Parallel are measured compute times for the
	// prediction pipeline (model + priors list + MPF + predictions).
	SingleCore time.Duration
	Parallel   time.Duration
	Speedup    float64
	// RecordsProcessed/PairsShuffled approximate Table 2's "data
	// processed/shuffled" columns.
	RecordsProcessed uint64
	PairsShuffled    uint64
	Predictions      int
	// UploadBytes/DownloadBytes are the serialized sizes of the seed
	// scan (uploaded to the compute tier) and the predictions list
	// (downloaded to the scanning host); Table 2's transfer legs.
	UploadBytes   uint64
	DownloadBytes uint64
	UploadTime    time.Duration
	DownloadTime  time.Duration
}

// transferRate models the paper's observed 18-30 MB/s up/download
// bandwidth to the serverless platform.
const transferRate = 25e6 // bytes per second

// Table2 measures the full breakdown on the LZR-style dataset with a
// mid-size seed and /16 step, running the computation twice: once on a
// single core (the paper's 9-day single-core figure) and once with full
// parallelism (the paper's 13-minute BigQuery figure).
func Table2(s *Setup) *Table2Result {
	seedSet, _ := SplitEval(s.LZR, s.Scale.SeedMid, true, 31)
	res := &Table2Result{}

	single, err := gps.Run(s.Universe, seedSet, gps.Config{StepBits: 16, Seed: 31, Workers: 1})
	if err != nil {
		panic(err)
	}
	res.SingleCore = single.Timings.Compute()

	par, err := gps.Run(s.Universe, seedSet, gps.Config{StepBits: 16, Seed: 31})
	if err != nil {
		panic(err)
	}
	res.Parallel = par.Timings.Compute()
	if res.Parallel > 0 {
		res.Speedup = float64(res.SingleCore) / float64(res.Parallel)
	}

	res.SeedProbes = seedSet.CollectionProbes
	res.PriorsProbes = par.PriorsProbes
	res.PredictProbes = par.PredictProbes
	res.Predictions = len(par.Predictions)
	res.RecordsProcessed, res.PairsShuffled = par.Model.Stats()

	seedRate := scanner.Rate{Gbps: 1.5}
	scanRate := scanner.Rate{Gbps: 0.05}
	res.SeedScanTime = seedRate.Duration(res.SeedProbes)
	res.PriorsScanTime = scanRate.Duration(res.PriorsProbes)
	res.PredictScanTime = scanRate.Duration(res.PredictProbes)

	// Transfer legs: the seed scan is uploaded as CSV (what BigQuery
	// ingests), the predictions list is downloaded as CSV.
	var up store.CountingWriter
	up.W = io.Discard
	if err := store.WriteDatasetCSV(&up, seedSet); err != nil {
		panic(err)
	}
	res.UploadBytes = up.N
	var down store.CountingWriter
	down.W = io.Discard
	if err := store.WritePredictionsCSV(&down, par.Predictions); err != nil {
		panic(err)
	}
	res.DownloadBytes = down.N
	res.UploadTime = time.Duration(float64(res.UploadBytes) / transferRate * float64(time.Second))
	res.DownloadTime = time.Duration(float64(res.DownloadBytes) / transferRate * float64(time.Second))
	return res
}

// Table returns the renderable form.
func (r *Table2Result) Table(space uint64) Table {
	scans := func(p uint64) string { return fmt.Sprintf("%.3f", float64(p)/float64(space)) }
	return Table{
		Title:  "Table 2: GPS performance breakdown",
		Header: []string{"stage", "probes (100% scans)", "modeled scan wall-time", "measured compute"},
		Rows: [][]string{
			{"seed scan (1.5 Gb/s)", scans(r.SeedProbes), r.SeedScanTime.Round(time.Second).String(), "-"},
			{"seed upload (25 MB/s)", fmt.Sprintf("%d B", r.UploadBytes), r.UploadTime.Round(time.Millisecond).String(), "-"},
			{"priors scan (50 Mb/s)", scans(r.PriorsProbes), r.PriorsScanTime.Round(time.Second).String(), "-"},
			{"predictions download (25 MB/s)", fmt.Sprintf("%d B", r.DownloadBytes), r.DownloadTime.Round(time.Millisecond).String(), "-"},
			{"prediction scan (50 Mb/s)", scans(r.PredictProbes), r.PredictScanTime.Round(time.Second).String(), "-"},
			{"prediction compute (1 core)", "-", "-", r.SingleCore.Round(time.Millisecond).String()},
			{"prediction compute (parallel)", "-", "-", r.Parallel.Round(time.Millisecond).String()},
		},
		Notes: []string{
			fmt.Sprintf("parallel speedup %.1fx on %d predictions; %d records processed, %d pairs shuffled",
				r.Speedup, r.Predictions, r.RecordsProcessed, r.PairsShuffled),
			"paper: single core 9d9h vs BigQuery 13 min; scanning dominated by the seed scan",
		},
	}
}

// Table3Result carries the most-predictive-feature analysis of §6.6.
type Table3Result struct {
	Rows []Table3Row
	// UniqueRules is the size of the MPF list (paper: 402K values);
	// UniqueKinds the distinct feature-tuple shapes (paper: 64).
	UniqueRules int
	UniqueKinds int
}

// Table3Row is one feature-tuple kind with the share of (normalized)
// services it is the most predictive tuple for.
type Table3Row struct {
	Kind     probmodel.TupleKind
	Services float64
	Norm     float64
}

// Table3 identifies which feature tuples GPS selects as most predictive:
// for every seed service, the argmax condition's shape, weighted by
// Equation 1 and Equation 2.
func Table3(s *Setup) *Table3Result {
	seedSet, _ := SplitEval(s.Censys, s.Scale.SeedMid, false, 33)
	hosts := seedSet.ByHost()
	m := probmodel.Build(probmodel.Config{}, hosts)
	mpf := predict.BuildMPF(m, hosts, engine.Config{})

	portCount := make(map[uint16]int)
	for _, r := range seedSet.Records {
		portCount[r.Port]++
	}
	type agg struct {
		services int
		norm     float64
	}
	kinds := make(map[probmodel.TupleKind]*agg)
	total := 0
	for _, h := range hosts {
		if len(h.Records) < 2 {
			continue
		}
		for _, ra := range h.Records {
			best, _, ok := m.BestCondForHost(h, ra.Port)
			if !ok {
				continue
			}
			k := best.Kind()
			a := kinds[k]
			if a == nil {
				a = &agg{}
				kinds[k] = a
			}
			a.services++
			a.norm += 1 / float64(portCount[ra.Port])
			total++
		}
	}
	res := &Table3Result{UniqueRules: mpf.Len(), UniqueKinds: len(kinds)}
	numPorts := len(portCount)
	for k, a := range kinds {
		res.Rows = append(res.Rows, Table3Row{
			Kind:     k,
			Services: float64(a.services) / float64(max(total, 1)),
			Norm:     a.norm / float64(max(numPorts, 1)),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Norm > res.Rows[j].Norm })
	return res
}

// Table returns the top-k renderable rows.
func (r *Table3Result) Table(k int) Table {
	t := Table{
		Title:  "Table 3: most predictive feature tuples",
		Header: []string{"feature tuple", "% normalized services", "% services"},
		Notes: []string{
			fmt.Sprintf("%d unique most-predictive rules across %d tuple kinds (paper: 402K rules, 64 kinds)",
				r.UniqueRules, r.UniqueKinds),
		},
	}
	for i, row := range r.Rows {
		if i >= k {
			break
		}
		t.Rows = append(t.Rows, []string{row.Kind.String(), fmtPct(row.Norm), fmtPct(row.Services)})
	}
	return t
}

// Table4 reproduces the Appendix C network-feature sweep: configure the
// model with every subnet size /16-/23 plus the ASN, and count which
// network feature is most predictive per seed service. The paper finds
// the ASN (36%) and /16 (20%) dominate.
func Table4(s *Setup) Table {
	seedSet, _ := SplitEval(s.LZR, s.Scale.SeedSmall, true, 35)
	hosts := seedSet.ByHost()
	m := probmodel.Build(probmodel.Config{
		NetKeys: features.CandidateNetworkKeys(),
		// Network families only: isolate the network features.
		Families: probmodel.FamilySet(0).With(probmodel.FamilyTN),
	}, hosts)

	counts := make(map[features.Key]int)
	total := 0
	for _, h := range hosts {
		if len(h.Records) < 2 {
			continue
		}
		for _, ra := range h.Records {
			best, _, ok := m.BestCondForHost(h, ra.Port)
			if !ok {
				continue
			}
			counts[best.NetKey]++
			total++
		}
	}
	type row struct {
		key features.Key
		n   int
	}
	var rows []row
	for k, n := range counts {
		rows = append(rows, row{k, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	t := Table{
		Title:  "Table 4: network features most predictive of services (Appendix C)",
		Header: []string{"network feature", "% services most predictive"},
		Notes:  []string{"paper: ASN 36%, /16 20%, then /18, /19, /17, /20, /21, /22, /23"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.key.String(), fmtPct(float64(r.n) / float64(max(total, 1)))})
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
